(** High-level entry points to the fully-anonymous shared-memory library.

    This module is the one-stop API used by the examples, the CLI and the
    benchmarks.  It wires the algorithms of the paper to concrete wirings
    and schedulers and returns validated results:

    - {!solve_snapshot} — the wait-free snapshot task (Figure 3);
    - {!solve_renaming} — adaptive [M(M+1)/2]-renaming (Figure 4);
    - {!solve_consensus} — obstruction-free consensus (Figure 5), driven to
      termination by granting solo time to undecided processors;
    - {!stable_view_analysis} — the eventual pattern of Section 4;
    - {!figure2_table} — the paper's Figure 2 execution table;
    - {!lower_bound_demo} — the Section 2.1 covering construction;
    - {!verify_snapshot_model} / {!find_nonatomic_execution} — the
      model-checking claims about the Figure-3 algorithm.

    Lower-level control (custom wirings, schedulers, protocols) lives in
    the [Anonmem], [Algorithms], [Tasks], [Modelcheck] and [Analysis]
    libraries, all re-exported here. *)

module Iset = Repro_util.Iset
module Rng = Repro_util.Rng
module Wiring = Anonmem.Wiring
module Scheduler = Anonmem.Scheduler
module Protocol = Anonmem.Protocol

type scheduler_kind = [ `Random | `Round_robin ]

let scheduler_of_kind rng = function
  | `Random -> Scheduler.random rng
  | `Round_robin -> Scheduler.round_robin ()

(** {1 Snapshot} *)

module Snapshot_sys = Anonmem.System.Make (Algorithms.Snapshot)

type 'o solved = {
  outputs : 'o array;
  steps : int;
  wiring : Wiring.t;
  seed : int;
}

(** Solve the snapshot task for [inputs] (group identifiers).  The wiring
    is drawn at random from [seed]; the schedule is fair.  Returns the
    snapshot of each processor, validated against the snapshot task (both
    the group-solvability definition and the stronger all-outputs
    containment the algorithm guarantees). *)
let solve_snapshot ?(seed = 0) ?(scheduler = `Random) ?(max_steps = 2_000_000)
    ~inputs () =
  let n = Array.length inputs in
  let rng = Rng.create ~seed in
  let cfg = Algorithms.Snapshot.standard ~n in
  let wiring = Wiring.random rng ~n ~m:n in
  let state = Snapshot_sys.init ~cfg ~wiring ~inputs in
  let sched = scheduler_of_kind (Rng.split rng) scheduler in
  let stop, steps = Snapshot_sys.run ~max_steps ~sched state in
  match stop with
  | Snapshot_sys.All_halted -> (
      let outputs =
        Array.map
          (function Some o -> o | None -> assert false)
          (Snapshot_sys.outputs state)
      in
      let outcome =
        Tasks.Outcome.make ~inputs ~outputs:(Snapshot_sys.outputs state) ()
      in
      match
        ( Tasks.Snapshot_task.check_group_solution outcome,
          Tasks.Snapshot_task.check_strong outcome )
      with
      | Ok (), Ok () -> Ok { outputs; steps; wiring; seed }
      | Error e, _ | _, Error e ->
          Error
            (Fmt.str "snapshot outputs failed validation: %a"
               Tasks.Task_failure.pp e))
  | Snapshot_sys.Max_steps ->
      Error (Fmt.str "snapshot did not terminate within %d steps" max_steps)
  | Snapshot_sys.Scheduler_done -> Error "scheduler gave up"

(** {1 Renaming} *)

module Renaming_sys = Anonmem.System.Make (Algorithms.Renaming)

let solve_renaming ?(seed = 0) ?(scheduler = `Random) ?(max_steps = 2_000_000)
    ~inputs () =
  let n = Array.length inputs in
  let rng = Rng.create ~seed in
  let cfg = Algorithms.Renaming.standard ~n in
  let wiring = Wiring.random rng ~n ~m:n in
  let state = Renaming_sys.init ~cfg ~wiring ~inputs in
  let sched = scheduler_of_kind (Rng.split rng) scheduler in
  let stop, steps = Renaming_sys.run ~max_steps ~sched state in
  match stop with
  | Renaming_sys.All_halted -> (
      let outputs =
        Array.map
          (function Some o -> o | None -> assert false)
          (Renaming_sys.outputs state)
      in
      let outcome =
        Tasks.Outcome.make ~inputs
          ~outputs:
            (Array.map
               (Option.map (fun o -> o.Algorithms.Renaming.name_out))
               (Renaming_sys.outputs state))
          ()
      in
      match Tasks.Renaming_task.check outcome with
      | Ok () -> Ok { outputs; steps; wiring; seed }
      | Error e ->
          Error
            (Fmt.str "renaming outputs failed validation: %a"
               Tasks.Task_failure.pp e))
  | Renaming_sys.Max_steps ->
      Error (Fmt.str "renaming did not terminate within %d steps" max_steps)
  | Renaming_sys.Scheduler_done -> Error "scheduler gave up"

(** {1 Consensus} *)

module Consensus_sys = Anonmem.System.Make (Algorithms.Consensus)

(** Solve consensus on [inputs].  The algorithm is obstruction-free, so a
    fully adversarial scheduler could livelock it; this driver runs a fair
    contention phase of [contention_steps] steps and then grants each
    still-undecided processor solo time, which the obstruction-freedom
    guarantee turns into termination.  The decided values are validated
    for agreement and validity. *)
let solve_consensus ?(seed = 0) ?(contention_steps = 5_000)
    ?(max_steps = 5_000_000) ~inputs () =
  let n = Array.length inputs in
  let rng = Rng.create ~seed in
  let cfg = Algorithms.Consensus.standard ~n in
  let wiring = Wiring.random rng ~n ~m:n in
  let state = Consensus_sys.init ~cfg ~wiring ~inputs in
  let sched = Scheduler.random (Rng.split rng) in
  let _, contention = Consensus_sys.run ~max_steps:contention_steps ~sched state in
  let solo_budget = max_steps - contention in
  let rec finish p steps =
    if p >= n then Ok steps
    else if Consensus_sys.is_halted state p then finish (p + 1) steps
    else
      let stop, s =
        Consensus_sys.run ~max_steps:solo_budget ~sched:(Scheduler.solo p) state
      in
      match stop with
      | Consensus_sys.Max_steps -> Error "solo run did not decide within budget"
      | Consensus_sys.All_halted | Consensus_sys.Scheduler_done ->
          if Consensus_sys.is_halted state p then finish (p + 1) (steps + s)
          else Error "solo run stalled without deciding"
  in
  match finish 0 contention with
  | Error e -> Error e
  | Ok steps -> (
      let outputs =
        Array.map
          (function Some o -> o | None -> assert false)
          (Consensus_sys.outputs state)
      in
      let outcome =
        Tasks.Outcome.make ~inputs ~outputs:(Consensus_sys.outputs state) ()
      in
      match Tasks.Consensus_task.check outcome with
      | Ok () -> Ok { outputs; steps; wiring; seed }
      | Error e ->
          Error
            (Fmt.str "consensus outputs failed validation: %a"
               Tasks.Task_failure.pp e))

(** {1 Analyses and reproductions} *)

let stable_view_analysis ?(seed = 0) ~n ~m ~inputs () =
  Analysis.Stable_views.run_random ~n ~m ~inputs ~seed ()

let figure2_table ?actions () =
  Repro_util.Text_table.render
    (Analysis.Figure2.to_table (Analysis.Figure2.generate ?actions ()))

let lower_bound_demo ~n () = Analysis.Lower_bound.run ~n ()

module Snapshot_mc = Modelcheck.Explorer.Make (Modelcheck.Codecs.Snapshot)
module Snapshot_par_mc =
  Modelcheck.Par_explorer.Make (Modelcheck.Codecs.Snapshot)
module Snapshot_ws_mc = Modelcheck.Ws_explorer.Make (Modelcheck.Codecs.Snapshot)

(** The strong snapshot invariant checked during model checking: every
    pair of outputs produced so far is related by containment, every
    output contains the owner's input and only participating inputs. *)
let snapshot_invariant cfg inputs (st : Snapshot_mc.state) =
  let participating = Iset.of_list (Array.to_list inputs) in
  let outs =
    Array.to_list st.Snapshot_mc.locals
    |> List.mapi (fun p l -> (p, Algorithms.Snapshot.output cfg l))
    |> List.filter_map (fun (p, o) -> Option.map (fun o -> (p, o)) o)
  in
  let rec check = function
    | [] -> Ok ()
    | (p, o) :: rest ->
        if not (Iset.mem inputs.(p) o) then
          Error (Fmt.str "output of p%d misses its own input" (p + 1))
        else if not (Iset.subset o participating) then
          Error (Fmt.str "output of p%d contains non-participants" (p + 1))
        else if
          List.exists (fun (_, o') -> not (Iset.comparable o o')) rest
        then Error (Fmt.str "incomparable outputs (p%d)" (p + 1))
        else check rest
  in
  check outs

(** Exhaustively verify the Figure-3 algorithm for [n] processors: for the
    given inputs and {e every} wiring (processor 0 pinned to the identity —
    lossless by register anonymity), explore all interleavings, check the
    strong snapshot invariant and wait-freedom.  [n = 3] reproduces the
    paper's TLC claim.

    [~reduction:true] quotients each per-wiring space by its anonymity
    symmetries (a gain exactly when [inputs] has repeated values — with
    all-distinct inputs the symmetry group is trivial); [~domains > 1]
    switches to the parallel engine ({!Modelcheck.Par_explorer}) with that
    many worker domains.  Both engines return the same summary type and
    agree on every verdict (asserted by the differential suite). *)
let snapshot_prune_oracle cfg inputs (st : Snapshot_mc.state) =
  Modelcheck.Inductive.violates_state ~cfg ~inputs
    Modelcheck.Inductive.proved ~locals:st.Snapshot_mc.locals
    ~registers:st.Snapshot_mc.registers

let verify_snapshot_model ?(n = 3) ?(inputs = None) ?max_states
    ?(reduction = false) ?(domains = 1) ?(ws = false)
    ?(prune_with_invariant = false) ?governor ?ckpt ?(resume = false) () =
  let inputs = match inputs with Some i -> i | None -> Array.init n (fun i -> i + 1) in
  let cfg = Algorithms.Snapshot.standard ~n in
  let prune =
    if prune_with_invariant then Some (snapshot_prune_oracle cfg inputs)
    else None
  in
  if domains > 1 && ws then
    (* Work-stealing engine: governed but not checkpointable (no
       consistent cut without stopping the pool) and unpruned. *)
    Snapshot_ws_mc.check_all_wirings ?max_states ~reduction ?governor ~domains
      ~invariant:(snapshot_invariant cfg inputs)
      ~cfg ~inputs ()
  else if domains > 1 then
    (* The layer-synchronous engine shares no checkpointable sweep
       position; run it unbudgeted and unpruned (callers wanting
       durability or pruning use domains = 1). *)
    Snapshot_par_mc.check_all_wirings ?max_states ~reduction ~domains
      ~invariant:(snapshot_invariant cfg inputs)
      ~cfg ~inputs ()
  else
    Snapshot_mc.check_all_wirings ?max_states ~reduction ?prune ?governor
      ?ckpt ~resume
      ~invariant:(snapshot_invariant cfg inputs)
      ~cfg ~inputs ()

(** RAM-bounded, safety-only variant of {!verify_snapshot_model}: the
    hash-compacted fingerprint engine
    ({!Modelcheck.Explorer.Make.check_all_wirings_fp}) sweeps the same
    wirings under [ram_budget_bytes] of visited-set RAM, spilling sorted
    fingerprint runs to disk past the budget.  The summary's
    [fp_omission_bound] (birthday bound, states² · 2⁻⁶⁴) qualifies the
    verdict; wait-freedom is {e not} decided (no edges are stored) — use
    the exact engines for liveness.  Supports the full
    governor/checkpoint/resume contract of the sequential engine. *)
let verify_snapshot_model_fp ?(n = 3) ?(inputs = None) ?max_states
    ?(reduction = false) ?(prune_with_invariant = false) ?ram_budget_bytes
    ?batch_states ?spill_dir ?governor ?ckpt ?(resume = false) () =
  let inputs =
    match inputs with Some i -> i | None -> Array.init n (fun i -> i + 1)
  in
  let cfg = Algorithms.Snapshot.standard ~n in
  let prune =
    if prune_with_invariant then Some (snapshot_prune_oracle cfg inputs)
    else None
  in
  Snapshot_mc.check_all_wirings_fp ?max_states ~reduction ?prune
    ?ram_budget_bytes ?batch_states ?spill_dir ?governor ?ckpt ~resume
    ~invariant:(snapshot_invariant cfg inputs)
    ~cfg ~inputs ()

module Snapshot_fault_mc =
  Modelcheck.Fault_explorer.Make (Modelcheck.Codecs.Snapshot)

(** Exhaustively verify the strong snapshot invariant under at most
    [max_crashes] injected crash-stops: for every wiring (processor 0
    pinned to the identity) and every interleaving, the search also
    branches on crashing any live processor at any point, which covers
    every timed crash-stop plan with at most [max_crashes] crashes.  The
    default [n = 2] completes in well under a second; [n = 3] is feasible
    but expensive (the crash branching multiplies the fault-free space).

    Only safety is checked — crashed processors trivially never
    terminate, so wait-freedom questions under crashes are the fuzzer's
    territory (a crash-stopped processor is exactly one that is never
    scheduled again). *)
let verify_snapshot_model_crashes ?(n = 2) ?(inputs = None) ?(max_crashes = 1)
    ?max_states ?(reduction = false) ?(prune_with_invariant = false) ?governor
    () =
  let inputs =
    match inputs with Some i -> i | None -> Array.init n (fun i -> i + 1)
  in
  let cfg = Algorithms.Snapshot.standard ~n in
  let prune =
    if prune_with_invariant then Some (snapshot_prune_oracle cfg inputs)
    else None
  in
  Snapshot_fault_mc.check_all_wirings ?max_states ~max_crashes ~reduction
    ?prune ?governor
    ~invariant:(snapshot_invariant cfg inputs)
    ~cfg ~inputs ()

module Consensus_mc = Modelcheck.Explorer.Make (Modelcheck.Codecs.Consensus)

(** Bounded model checking of the Figure-5 consensus algorithm (an
    extension beyond the paper's verification): explore every interleaving
    for [n] processors until some timestamp would exceed [max_ts], checking
    agreement and validity of all decisions along the way.  The timestamp
    bound makes the otherwise-infinite state space finite; safety holds for
    the full algorithm iff it holds for every bound, so each run is a
    genuine bounded-safety certificate. *)
let verify_consensus_bounded ?(n = 2) ?(inputs = None) ?(max_ts = 5)
    ?max_states ?(reduction = false) ?governor () =
  let inputs =
    match inputs with Some i -> i | None -> Array.init n (fun i -> i + 1)
  in
  let cfg = Algorithms.Consensus.standard ~n in
  let participating = Iset.of_list (Array.to_list inputs) in
  let invariant (st : Consensus_mc.state) =
    let decided =
      Array.to_list st.Consensus_mc.locals
      |> List.filter_map (fun l -> l.Algorithms.Consensus.decided)
    in
    match decided with
    | [] -> Ok ()
    | v :: rest ->
        if not (List.for_all (Int.equal v) rest) then
          Error (Fmt.str "agreement violated: %a" Fmt.(list ~sep:comma int) decided)
        else if not (Iset.mem v participating) then
          Error (Fmt.str "validity violated: decided %d" v)
        else Ok ()
  in
  let stop_expansion (st : Consensus_mc.state) =
    Array.exists
      (fun l -> l.Algorithms.Consensus.ts >= max_ts)
      st.Consensus_mc.locals
  in
  let wirings = Anonmem.Wiring.enumerate ~n ~m:n ~fix_first:true in
  let rec go total = function
    | [] -> Ok total
    | wiring :: rest -> (
        match
          Consensus_mc.check_exhaustive ?max_states ~fail_on_cycle:false
            ~reduction ?governor ~invariant ~stop_expansion ~cfg ~wiring
            ~inputs ()
        with
        | Consensus_mc.Dfs_ok s -> go (total + s.Consensus_mc.dfs_states) rest
        | Consensus_mc.Dfs_cycle _ -> assert false
        | Consensus_mc.Dfs_invariant_failed { message; _ } ->
            Error
              (Fmt.str "under wiring %a: %s" Anonmem.Wiring.pp wiring message)
        | Consensus_mc.Dfs_state_limit k ->
            Error (Fmt.str "state limit at %d" k)
        | Consensus_mc.Dfs_exhausted { reason; stats } ->
            Error
              (Fmt.str "budget exhausted (%a) at %d states"
                 Modelcheck.Governor.pp_reason reason
                 stats.Consensus_mc.dfs_states))
  in
  go 0 wirings

(** {1 Protocol portfolio verification}

    Model-checking entry points for the literature portfolio
    ({!Algorithms.Rt_mutex}, {!Algorithms.Naming},
    {!Algorithms.Weak_leader}).  Unlike the wait-free snapshot, the mutex
    and the naming layer built on it are only deadlock-free at coprime
    register counts — their spin loops put genuine cycles in the
    transition graph — so verification splits into a state invariant
    (safety) and a fair-SCC search (liveness), both per wiring.  The
    verdicts feed {!Analysis.Feasibility}. *)

module Rt_mutex_mc = Modelcheck.Explorer.Make (Modelcheck.Codecs.Rt_mutex)
module Rt_mutex_par_mc =
  Modelcheck.Par_explorer.Make (Modelcheck.Codecs.Rt_mutex)
module Rt_mutex_fault_mc =
  Modelcheck.Fault_explorer.Make (Modelcheck.Codecs.Rt_mutex)
module Weak_leader_mc = Modelcheck.Explorer.Make (Modelcheck.Codecs.Weak_leader)
module Weak_leader_par_mc =
  Modelcheck.Par_explorer.Make (Modelcheck.Codecs.Weak_leader)
module Naming_mc = Modelcheck.Explorer.Make (Modelcheck.Codecs.Naming)
module Naming_par_mc = Modelcheck.Par_explorer.Make (Modelcheck.Codecs.Naming)
module Naming_fault_mc =
  Modelcheck.Fault_explorer.Make (Modelcheck.Codecs.Naming)

(** One verdict shape for every portfolio protocol, structured enough for
    the feasibility map and for witness replay in the test suite.  Paths
    are processor-id step sequences from the initial state
    ({!Modelcheck.Witness.Replay} rematerializes the executions). *)
type verdict =
  | Verified of { wirings : int; states : int }
  | Safety_violation of {
      wiring : Wiring.t;
      message : string;
      path : int list;  (** steps to the violating state (may be empty
                            when the violation was caught at terminal
                            outcomes rather than mid-trace) *)
    }
  | Liveness_violation of {
      wiring : Wiring.t;
      live : int list;  (** the processors spinning forever *)
      stem : int list;  (** steps from the initial state to the cycle *)
      cycle : int list;  (** steps around the fair cycle, stepping every
                             live processor at least once *)
    }
  | Resource_limit of int
  | Exhausted of {
      reason : Modelcheck.Governor.reason;
      states_visited : int;
      checkpoint : string option;
          (** where the engine wrote its final checkpoint, when a
              checkpoint policy was in force — resuming with the same
              policy continues exactly where the budget ran out *)
    }

let pp_verdict ppf = function
  | Verified { wirings; states } ->
      Fmt.pf ppf "verified (%d wirings, %d states)" wirings states
  | Safety_violation { wiring; message; _ } ->
      Fmt.pf ppf "safety violation under wiring %a: %s" Wiring.pp wiring
        message
  | Liveness_violation { wiring; live; _ } ->
      Fmt.pf ppf "deadlock under wiring %a: processors %a spin forever"
        Wiring.pp wiring
        Fmt.(list ~sep:(any ", ") (fun ppf p -> Fmt.pf ppf "p%d" (p + 1)))
        live
  | Resource_limit k -> Fmt.pf ppf "state limit hit at %d states" k
  | Exhausted { reason; states_visited; checkpoint } ->
      Fmt.pf ppf "budget exhausted (%a) after %d states%a"
        Modelcheck.Governor.pp_reason reason states_visited
        Fmt.(option (any "; resume from " ++ string))
        checkpoint

let verdict_is_verified = function Verified _ -> true | _ -> false

(** Mutual exclusion as a state invariant: at most one processor inside
    the critical section, and no completed audit may have tripped. *)
let mutex_invariant cfg (st : Rt_mutex_mc.state) =
  let in_cs =
    Array.to_list st.Rt_mutex_mc.locals
    |> List.mapi (fun p l -> (p, l))
    |> List.filter (fun (_, l) -> Algorithms.Rt_mutex.in_cs l)
    |> List.map fst
  in
  match in_cs with
  | _ :: _ :: _ ->
      Error
        (Fmt.str "%a" Tasks.Task_failure.pp
           (Tasks.Mutex_task.exclusion_failure ~processors:in_cs))
  | _ ->
      let intruded =
        Array.to_list st.Rt_mutex_mc.locals
        |> List.mapi (fun p l -> (p, Algorithms.Rt_mutex.output cfg l))
        |> List.filter (fun (_, o) -> o = Some Algorithms.Rt_mutex.Cs_intruded)
        |> List.map fst
      in
      if intruded = [] then Ok ()
      else
        Error
          (Fmt.str "audit tripwire: %a observed an intruder"
             Fmt.(list ~sep:(any ", ") (fun ppf p -> Fmt.pf ppf "p%d" (p + 1)))
             intruded)

(* Shared liveness post-pass: the BFS space was explored clean of safety
   violations; look for a fair SCC.  Detection is exact on reduced
   spaces, but the lasso witness needs concrete states, so a reduced hit
   triggers one unreduced re-exploration. *)
let mutex_liveness ?max_states ~cfg ~wiring ~inputs space =
  match Rt_mutex_mc.find_fair_scc space with
  | None -> Ok ()
  | Some (_, live) ->
      let wspace =
        if space.Rt_mutex_mc.reduction = None then Some space
        else
          match
            Rt_mutex_mc.explore ?max_states ~reduction:false ~cfg ~wiring
              ~inputs ()
          with
          | Rt_mutex_mc.Explored s -> Some s
          | _ -> None
      in
      let live, stem, cycle =
        match Option.map (fun s -> (s, Rt_mutex_mc.find_fair_scc s)) wspace with
        | Some (s, Some (entry, live)) ->
            ( live,
              List.map fst (Rt_mutex_mc.trace_to s entry),
              Rt_mutex_mc.fair_cycle_witness s ~entry ~live )
        | _ -> (live, [], [])
      in
      Error (live, stem, cycle)

(** Exhaustively verify the symmetric mutex at [(n, m)]: for every wiring
    (processor 0 pinned), explore every interleaving, check mutual
    exclusion along the way, the audit tripwire at terminal outcomes, and
    deadlock-freedom as absence of fair SCCs.  Pass [~cfg] to check a
    planted-bug variant ({!Algorithms.Rt_mutex.cfg_eager}).
    [~wiring_classes:true] additionally quotients the wiring sweep by
    processor relabelling ({!Anonmem.Wiring.enumerate_classes}) — sound
    here because every verdict below is id-agnostic.  [~packed:true]
    sweeps each wiring with the single-word engine
    ({!Modelcheck.Rt_mutex_packed}; same step relation and verdicts, an
    order of magnitude faster — what makes the clean n = 3 feasibility
    cells exhaustively checkable): clean wirings are accepted on its
    word, while any violating or unsupported wiring is re-explored by
    the generic engine below so counterexample witnesses stay concrete
    and replayable. *)
let verify_mutex ?(n = 2) ?(m = 3) ?cfg ?max_states ?(reduction = false)
    ?(wiring_classes = false) ?(packed = false) ?governor ?ckpt
    ?(resume = false) () =
  let cfg = match cfg with Some c -> c | None -> Algorithms.Rt_mutex.cfg ~n ~m in
  let n = Algorithms.Rt_mutex.processors cfg in
  let m = Algorithms.Rt_mutex.registers cfg in
  let inputs = Array.init n (fun i -> i + 1) in
  let wirings =
    if wiring_classes then Wiring.enumerate_classes ~n ~m
    else Wiring.enumerate ~n ~m ~fix_first:true
  in
  let wiring_arr = Array.of_list wirings in
  let pws =
    if packed then Some (Modelcheck.Rt_mutex_packed.ws ()) else None
  in
  (* Sweep-level resume (packed path): the checkpoint's "sweep" section
     carries (wiring index, wirings done, states so far); fast-forward
     to that wiring and let the engine restart it mid-exploration from
     its own sections.  A missing file on [resume] just runs fresh, so
     drivers can pass [~resume:true] unconditionally. *)
  let resume_idx, start_wcount, start_states =
    match ckpt with
    | Some p
      when packed && resume
           && Sys.file_exists p.Modelcheck.Checkpoint.path -> (
        let sections =
          Modelcheck.Checkpoint.load ~path:p.Modelcheck.Checkpoint.path
        in
        match List.assoc_opt "sweep" sections with
        | None -> (None, 0, 0)
        | Some b -> (
            match Modelcheck.Checkpoint.ints_of_bytes b with
            | [| idx; wcount; states |]
              when idx >= 0 && idx < Array.length wiring_arr ->
                (Some idx, wcount, states)
            | _ ->
                raise
                  (Modelcheck.Checkpoint.Corrupt_checkpoint
                     "verify_mutex: bad sweep section")))
    | _ -> (None, 0, 0)
  in
  let rec go idx wcount states =
    if idx >= Array.length wiring_arr then Verified { wirings = wcount; states }
    else
      let wiring = wiring_arr.(idx) in
      let generic () =
        match
          Rt_mutex_mc.explore ?max_states ~reduction ?governor
            ~invariant:(mutex_invariant cfg) ~cfg ~wiring ~inputs ()
        with
        | Rt_mutex_mc.State_limit k -> Resource_limit k
        | Rt_mutex_mc.Exhausted { reason; states = k } ->
            Exhausted
              { reason; states_visited = states + k; checkpoint = None }
        | Rt_mutex_mc.Invariant_failed (_, v) ->
            Safety_violation
              {
                wiring;
                message = v.Rt_mutex_mc.message;
                path = List.map fst v.Rt_mutex_mc.trace;
              }
        | Rt_mutex_mc.Explored space -> (
            let bad_terminal =
              List.find_map
                (fun t ->
                  match Tasks.Mutex_task.check t with
                  | Ok () -> None
                  | Error e -> Some e)
                (Rt_mutex_mc.terminal_outcomes space ~group_of_input:Fun.id
                   ~to_task_output:Fun.id)
            in
            match bad_terminal with
            | Some e ->
                Safety_violation
                  {
                    wiring;
                    message = Fmt.str "%a" Tasks.Task_failure.pp e;
                    path = [];
                  }
            | None -> (
                match
                  mutex_liveness ?max_states ~cfg ~wiring ~inputs space
                with
                | Ok () ->
                    go (idx + 1) (wcount + 1)
                      (states + Rt_mutex_mc.state_count space)
                | Error (live, stem, cycle) ->
                    Liveness_violation { wiring; live; stem; cycle }))
      in
      match pws with
      | None -> generic ()
      | Some ws -> (
          match
            Modelcheck.Rt_mutex_packed.check_wiring ~ws ?max_states ?governor
              ?ckpt
              ~ckpt_extra:
                [
                  ( "sweep",
                    Modelcheck.Checkpoint.bytes_of_ints
                      [| idx; wcount; states |] );
                ]
              ~resume:(resume_idx = Some idx)
              ~cfg ~wiring ~inputs ()
          with
          | Modelcheck.Rt_mutex_packed.Clean { states = k; _ } ->
              go (idx + 1) (wcount + 1) (states + k)
          | Modelcheck.Rt_mutex_packed.Limit k -> Resource_limit k
          | Modelcheck.Rt_mutex_packed.Exhausted { reason; states = k } ->
              Exhausted
                {
                  reason;
                  states_visited = states + k;
                  checkpoint =
                    Option.map
                      (fun p -> p.Modelcheck.Checkpoint.path)
                      ckpt;
                }
          | Modelcheck.Rt_mutex_packed.Breach
          | Modelcheck.Rt_mutex_packed.Fair_cycle
          | Modelcheck.Rt_mutex_packed.Unsupported ->
              generic ())
  in
  match resume_idx with
  | Some idx -> go idx start_wcount start_states
  | None -> go 0 0 0

(** Name distinctness as a state invariant (inputs are distinct
    identities, so any repeated acquired name is a violation).  The
    flood phase is deliberately {e not} required to be exclusive: each
    flood write releases the register it extends, so a successor can
    legitimately start its own flood before the predecessor's last
    write lands — a benign overlap, serialized by the name ledger
    itself rather than by CS occupancy. *)
let naming_invariant cfg (st : Naming_mc.state) =
  let named =
    Array.to_list st.Naming_mc.locals
    |> List.mapi (fun p l -> (p, Algorithms.Naming.output cfg l))
    |> List.filter_map (fun (p, o) ->
           Option.map (fun o -> (p, o.Algorithms.Naming.name)) o)
  in
  let rec dup = function
    | [] -> None
    | (p, k) :: rest -> (
        match List.find_opt (fun (_, k') -> k = k') rest with
        | Some (q, _) -> Some (p, q, k)
        | None -> dup rest)
  in
  match dup named with
  | Some (p, q, k) ->
      Error
        (Fmt.str "p%d and p%d both acquired name %d" (p + 1) (q + 1) k)
  | None -> Ok ()

let naming_liveness ?max_states ~cfg ~wiring ~inputs space =
  match Naming_mc.find_fair_scc space with
  | None -> Ok ()
  | Some (_, live) ->
      let wspace =
        if space.Naming_mc.reduction = None then Some space
        else
          match
            Naming_mc.explore ?max_states ~reduction:false ~cfg ~wiring
              ~inputs ()
          with
          | Naming_mc.Explored s -> Some s
          | _ -> None
      in
      let live, stem, cycle =
        match Option.map (fun s -> (s, Naming_mc.find_fair_scc s)) wspace with
        | Some (s, Some (entry, live)) ->
            ( live,
              List.map fst (Naming_mc.trace_to s entry),
              Naming_mc.fair_cycle_witness s ~entry ~live )
        | _ -> (live, [], [])
      in
      Error (live, stem, cycle)

(** Exhaustively verify the desanonymization layer at [(n, m)]:
    distinctness and flood exclusion as invariants, the full naming task
    (distinctness, own-cell inclusion, view containment) at terminal
    outcomes, and deadlock-freedom by fair-SCC search.  The layer runs
    above the mutex, so its feasibility inherits the mutex threshold. *)
let verify_naming ?(n = 2) ?(m = 3) ?cfg ?max_states ?(reduction = false)
    ?(wiring_classes = false) ?governor () =
  let cfg = match cfg with Some c -> c | None -> Algorithms.Naming.cfg ~n ~m in
  let n = Algorithms.Naming.processors cfg in
  let m = Algorithms.Naming.registers cfg in
  let inputs = Array.init n (fun i -> i + 1) in
  let wirings =
    if wiring_classes then Wiring.enumerate_classes ~n ~m
    else Wiring.enumerate ~n ~m ~fix_first:true
  in
  let rec go wcount states = function
    | [] -> Verified { wirings = wcount; states }
    | wiring :: rest -> (
        match
          Naming_mc.explore ?max_states ~reduction ?governor
            ~invariant:(naming_invariant cfg) ~cfg ~wiring ~inputs ()
        with
        | Naming_mc.State_limit k -> Resource_limit k
        | Naming_mc.Exhausted { reason; states = k } ->
            Exhausted
              { reason; states_visited = states + k; checkpoint = None }
        | Naming_mc.Invariant_failed (_, v) ->
            Safety_violation
              {
                wiring;
                message = v.Naming_mc.message;
                path = List.map fst v.Naming_mc.trace;
              }
        | Naming_mc.Explored space -> (
            let bad_terminal =
              List.find_map
                (fun t ->
                  match Tasks.Naming_task.check t with
                  | Ok () -> None
                  | Error e -> Some e)
                (Naming_mc.terminal_outcomes space ~group_of_input:Fun.id
                   ~to_task_output:Fun.id)
            in
            match bad_terminal with
            | Some e ->
                Safety_violation
                  {
                    wiring;
                    message = Fmt.str "%a" Tasks.Task_failure.pp e;
                    path = [];
                  }
            | None -> (
                match
                  naming_liveness ?max_states ~cfg ~wiring ~inputs space
                with
                | Ok () ->
                    go (wcount + 1)
                      (states + Naming_mc.state_count space)
                      rest
                | Error (live, stem, cycle) ->
                    Liveness_violation { wiring; live; stem; cycle })))
  in
  go 0 0 wirings

(** Leader uniqueness as a state invariant. *)
let leader_invariant cfg (st : Weak_leader_mc.state) =
  let leaders =
    Array.to_list st.Weak_leader_mc.locals
    |> List.mapi (fun p l -> (p, Algorithms.Weak_leader.output cfg l))
    |> List.filter (fun (_, o) -> o = Some Algorithms.Weak_leader.Leader)
    |> List.map fst
  in
  match leaders with
  | p :: q :: _ ->
      Error
        (Fmt.str "p%d and p%d both elected themselves leader" (p + 1) (q + 1))
  | _ -> Ok ()

(** Exhaustively verify the weak leader protocol at [(n, m)]: leader
    uniqueness as an invariant and wait-freedom as acyclicity, both via
    the lean DFS engine (the protocol claims wait-freedom, so cycles are
    violations here — no fair-SCC pass needed).  A wait-freedom breach
    reports the spinning processors as a liveness violation. *)
let verify_leader ?(n = 2) ?(m = 3) ?cfg ?max_states ?(reduction = false)
    ?(wiring_classes = false) ?governor () =
  let cfg =
    match cfg with Some c -> c | None -> Algorithms.Weak_leader.cfg ~n ~m
  in
  let n = Algorithms.Weak_leader.processors cfg in
  let m = Algorithms.Weak_leader.registers cfg in
  let inputs = Array.init n (fun i -> i + 1) in
  let wirings =
    if wiring_classes then Wiring.enumerate_classes ~n ~m
    else Wiring.enumerate ~n ~m ~fix_first:true
  in
  let rec go wcount states = function
    | [] -> Verified { wirings = wcount; states }
    | wiring :: rest -> (
        match
          Weak_leader_mc.check_exhaustive ?max_states ~fail_on_cycle:true
            ~reduction ?governor ~invariant:(leader_invariant cfg) ~cfg
            ~wiring ~inputs ()
        with
        | Weak_leader_mc.Dfs_ok stats ->
            go (wcount + 1) (states + stats.Weak_leader_mc.dfs_states) rest
        | Weak_leader_mc.Dfs_invariant_failed { message; path; _ } ->
            Safety_violation { wiring; message; path }
        | Weak_leader_mc.Dfs_cycle { processors; _ } ->
            Liveness_violation
              { wiring; live = processors; stem = []; cycle = [] }
        | Weak_leader_mc.Dfs_state_limit k -> Resource_limit k
        | Weak_leader_mc.Dfs_exhausted { reason; stats } ->
            Exhausted
              {
                reason;
                states_visited = states + stats.Weak_leader_mc.dfs_states;
                checkpoint = None;
              })
  in
  go 0 0 wirings

(** Mutual exclusion under at most [max_crashes] crash-stops: a crashed
    holder deadlocks the lock (liveness is forfeit, as for any one-shot
    mutex under crash-stop) but exclusion must survive.  Exhaustive over
    wirings, interleavings and crash placements. *)
let verify_mutex_crashes ?(n = 2) ?(m = 3) ?cfg ?(max_crashes = 1) ?max_states
    ?(reduction = false) ?governor () =
  let cfg = match cfg with Some c -> c | None -> Algorithms.Rt_mutex.cfg ~n ~m in
  let n = Algorithms.Rt_mutex.processors cfg in
  let inputs = Array.init n (fun i -> i + 1) in
  Rt_mutex_fault_mc.check_all_wirings ?max_states ~max_crashes ~reduction
    ?governor ~invariant:(mutex_invariant cfg) ~cfg ~inputs ()

(** Name distinctness under at most [max_crashes] crash-stops. *)
let verify_naming_crashes ?(n = 2) ?(m = 3) ?cfg ?(max_crashes = 1) ?max_states
    ?(reduction = false) ?governor () =
  let cfg = match cfg with Some c -> c | None -> Algorithms.Naming.cfg ~n ~m in
  let n = Algorithms.Naming.processors cfg in
  let inputs = Array.init n (fun i -> i + 1) in
  Naming_fault_mc.check_all_wirings ?max_states ~max_crashes ~reduction
    ?governor ~invariant:(naming_invariant cfg) ~cfg ~inputs ()

(** Glue between the verifiers above and the pure map of
    {!Analysis.Feasibility}: classify one cell of the (task, n, m) grid
    by exhaustive model checking.

    Durable-run knobs: [wall_seconds] / [heap_words] / [quota] bound the
    cell with a fresh {!Modelcheck.Governor} (disposed afterwards);
    [interrupted_flag] is shared across cells so one SIGINT stops the
    whole sweep; [ckpt_dir] enables engine checkpointing (the packed
    mutex path) to [ckpt_dir/task-n-m.ckpt], with resume always on — a
    budget-exhausted or interrupted cell classifies as
    {!Analysis.Feasibility.Unknown} carrying the checkpoint path, and
    re-running the same cell with the same [ckpt_dir] continues from it. *)
let feasibility_check ?max_states ?(reduction = false)
    ?(wiring_classes = false) ?wall_seconds ?heap_words ?quota
    ?interrupted_flag ?ckpt_dir ~task ~n ~m () =
  let classify = function
    | Verified { wirings; states } ->
        Analysis.Feasibility.Solved { wirings; states }
    | Safety_violation { message; _ } -> Analysis.Feasibility.Safety_broken message
    | Liveness_violation { live; _ } ->
        Analysis.Feasibility.Deadlock
          (Fmt.str "processors %a spin forever"
             Fmt.(list ~sep:(any ", ") (fun ppf p -> Fmt.pf ppf "p%d" (p + 1)))
             live)
    | Resource_limit k -> Analysis.Feasibility.Limit k
    | Exhausted { reason; states_visited; checkpoint } ->
        Analysis.Feasibility.Unknown
          {
            reason = Modelcheck.Governor.reason_to_string reason;
            states = states_visited;
            checkpoint;
          }
  in
  let budgeted =
    wall_seconds <> None || heap_words <> None || quota <> None
    || interrupted_flag <> None
  in
  let governor =
    if budgeted then
      Some
        (Modelcheck.Governor.create ?wall_seconds ?heap_words ?quota
           ?interrupted_flag ())
    else None
  in
  let ckpt =
    Option.map
      (fun dir ->
        {
          Modelcheck.Checkpoint.path =
            Filename.concat dir (Fmt.str "%s-%d-%d.ckpt" task n m);
          every_states = 100_000;
        })
      ckpt_dir
  in
  let verdict =
    match task with
    | "mutex" ->
        verify_mutex ~n ~m ?max_states ~reduction ~wiring_classes
          ~packed:true ?governor ?ckpt ~resume:true ()
    | "naming" ->
        verify_naming ~n ~m ?max_states ~reduction ~wiring_classes ?governor
          ()
    | "leader" ->
        verify_leader ~n ~m ?max_states ~reduction ~wiring_classes ?governor
          ()
    | t ->
        Option.iter Modelcheck.Governor.dispose governor;
        invalid_arg (Fmt.str "feasibility_check: unknown task %S" t)
  in
  Option.iter Modelcheck.Governor.dispose governor;
  (* A finished cell's checkpoint is dead weight (and would poison a
     re-run with a stale context): drop it. *)
  (match (verdict, ckpt) with
  | (Verified _ | Safety_violation _ | Liveness_violation _), Some p
    when Sys.file_exists p.Modelcheck.Checkpoint.path ->
      Sys.remove p.Modelcheck.Checkpoint.path
  | _ -> ());
  classify verdict

(** The empirical feasibility map: every cell of the portfolio grids
    checked exhaustively, each verdict compared against the
    coprimality-threshold prediction.  [quick] restricts to the [n = 2]
    rows (the smoke budget).  [cached] / [on_fresh] / [stop] are the
    durable-run hooks of {!Analysis.Feasibility.run} (journal replay,
    journal append, interrupt); the budget knobs are per cell, as in
    {!feasibility_check}. *)
let feasibility_map ?(quick = false) ?max_states ?reduction ?wiring_classes
    ?wall_seconds ?heap_words ?quota ?interrupted_flag ?ckpt_dir ?on_cell
    ?on_fresh ?cached ?stop () =
  Analysis.Feasibility.run ?on_cell ?on_fresh ?cached ?stop
    ~check:(fun ~task ~n ~m ->
      feasibility_check ?max_states ?reduction ?wiring_classes ?wall_seconds
        ?heap_words ?quota ?interrupted_flag ?ckpt_dir ~task ~n ~m ())
    (Analysis.Feasibility.grids ~quick ())

module Snapshot_witness = Modelcheck.Witness.Search (Algorithms.Snapshot)
module Snapshot_exhaustive_witness =
  Modelcheck.Witness.Exhaustive (Modelcheck.Codecs.Snapshot)

let snapshot_memory_set regs =
  Array.fold_left
    (fun acc (v : Algorithms.Snapshot.value) -> Iset.union acc v.view)
    Iset.empty regs

(** Exhaustively search for the Section-8 non-atomicity witness: for each
    candidate set [target] and each wiring, explore the sub-state-space in
    which the memory content set never equals [target] and look for a
    reachable state where a processor has output [target].  A hit is a
    complete proof of the claim, with a shortest witness execution. *)
let find_nonatomic_exhaustive ?(n = 3) ?max_states
    ?(targets = [ [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ]; [ 1 ]; [ 2 ]; [ 3 ] ]) () =
  let inputs = Array.init n (fun i -> i + 1) in
  let cfg = Algorithms.Snapshot.standard ~n in
  let wirings = Anonmem.Wiring.enumerate ~n ~m:n ~fix_first:true in
  let rec try_targets = function
    | [] -> None
    | t :: rest -> (
        match
          Snapshot_exhaustive_witness.find_nonatomic_exhaustive ?max_states
            ~cfg ~inputs ~memory_set:snapshot_memory_set ~output_set:Fun.id
            ~target:(Iset.of_list t) ~wirings ()
        with
        | Some w -> Some w
        | None -> try_targets rest)
  in
  try_targets targets

(** Exhaustive non-atomicity witness search for the paper's 3-processor
    configuration using the bit-packed checker: for each (inputs, target)
    candidate, decide by pruned reachability whether some execution makes
    a processor return [target] although the memory never contains it.
    Candidates start with group assignments, where two same-input
    processors can raise each other's levels while the third keeps
    covering. *)
let find_nonatomic_packed
    ?(candidates =
      [
        ([| 1; 1; 2 |], [ 1 ]);
        ([| 1; 2; 2 |], [ 2 ]);
        ([| 1; 1; 2 |], [ 1; 2 ]);
        ([| 1; 2; 3 |], [ 1; 2 ]);
      ]) ?log2_capacity () =
  let wirings = Anonmem.Wiring.enumerate ~n:3 ~m:3 ~fix_first:true in
  let rec go = function
    | [] -> None
    | (inputs, target) :: rest -> (
        let target_mask = Iset.to_bits (Iset.map (fun i -> i - 1) (Iset.of_list target)) in
        match
          Modelcheck.Snapshot3.find_nonatomic ?log2_capacity ~inputs
            ~target_mask ~wirings ()
        with
        | Some w -> Some (inputs, Iset.of_list target, w)
        | None -> go rest)
  in
  go candidates

(** Search for the Section-8 non-atomicity witness: an execution in which
    some processor's snapshot never equalled the set of inputs present in
    memory at any time. *)
let find_nonatomic_execution ?(n = 3) ?(attempts = 2_000) () =
  let inputs = Array.init n (fun i -> i + 1) in
  let cfg = Algorithms.Snapshot.standard ~n in
  Snapshot_witness.find_nonatomic ~cfg ~inputs
    ~memory_set:(fun regs ->
      Array.fold_left
        (fun acc (v : Algorithms.Snapshot.value) -> Iset.union acc v.view)
        Iset.empty regs)
    ~output_set:Fun.id ~attempts ()
