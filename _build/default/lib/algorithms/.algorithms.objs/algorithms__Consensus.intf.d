lib/algorithms/consensus.mli: Anonmem Fmt Long_lived_snapshot Repro_util Sorted_set
