(* Quickstart: solve the snapshot task among anonymous processors.

   Five processors — no identifiers, no agreement on register names — each
   contribute an input and obtain a snapshot: a set of participating inputs
   containing their own, with all snapshots related by containment.  This is
   the headline result of the paper (Figure 3), driven through the
   high-level [Core] API.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let inputs = [| 10; 20; 30; 40; 50 |] in
  Printf.printf "Solving the snapshot task for %d fully-anonymous processors\n"
    (Array.length inputs);
  Printf.printf "inputs: %s\n\n"
    (String.concat " " (Array.to_list (Array.map string_of_int inputs)));
  match Core.solve_snapshot ~seed:2024 ~inputs () with
  | Error e ->
      prerr_endline ("unexpected failure: " ^ e);
      exit 1
  | Ok { outputs; steps; wiring; _ } ->
      Printf.printf "hidden wiring drawn at random: %s\n"
        (Fmt.str "%a" Anonmem.Wiring.pp wiring);
      Printf.printf "all processors terminated after %d shared-memory steps\n\n"
        steps;
      Array.iteri
        (fun p o ->
          Printf.printf "processor %d snapshot: %s\n" (p + 1)
            (Repro_util.Iset.to_string o))
        outputs;
      (* The outputs have already been validated by [solve_snapshot]; show
         the containment chain explicitly. *)
      let sorted =
        List.sort
          (fun a b -> compare (Repro_util.Iset.cardinal a) (Repro_util.Iset.cardinal b))
          (Array.to_list outputs)
      in
      print_newline ();
      Printf.printf "containment chain: %s\n"
        (String.concat " <= " (List.map Repro_util.Iset.to_string sorted))
