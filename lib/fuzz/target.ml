(** Fuzzing targets: a protocol bundled with its task oracle.

    A target packages an {!Anonmem.Protocol.S} instance (with integer
    inputs, interpreted as group identifiers throughout the library) with
    everything the harness needs to generate and judge executions of it:
    how to build a configuration, how many registers the standard
    instantiation uses, the task oracle over (possibly partial) outcomes,
    and the per-processor step budget implied by its progress guarantee.

    The oracle receives partial outcomes: a processor that was never
    scheduled has [participated = false] and [output = None].  This is
    sound for every task in the library — a processor that took no step
    wrote nothing, so its input cannot appear in anyone's view — and it is
    what makes crash-prone and ultimately-periodic adversaries checkable. *)

module type S = sig
  module P : Anonmem.Protocol.S with type input = int

  val cfg : n:int -> m:int -> P.cfg

  val m_range : n:int -> int * int
  (** Register counts worth fuzzing for [n] processors.  The paper's
      algorithms are specified for [m = n], so their range is [(n, n)];
      baselines whose defects only surface when processors share registers
      (double collect under the Figure-2 adversary runs 5 processors on 3
      registers) extend the range below [n]. *)

  val check :
    inputs:int array ->
    participated:bool array ->
    outputs:P.output option array ->
    (unit, Tasks.Task_failure.t) result
  (** The task oracle over a (possibly partial) outcome. *)

  val step_budget : n:int -> m:int -> int option
  (** Per-processor step budget implied by the protocol's progress
      guarantee: a processor that takes this many steps without halting
      violates wait-freedom.  [None] for protocols that only guarantee
      obstruction-freedom (or less) — the harness then checks safety
      only. *)
end
