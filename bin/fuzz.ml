(* fuzz: schedule-fuzzing CLI for the fully-anonymous shared-memory
   library.

   The default command runs a randomized campaign: random wirings, inputs
   and adversarial schedules (fair, starving, crash-prone, ultimately
   periodic) against a protocol's task oracle, with greedy shrinking of
   any counterexample to a 1-minimal scripted schedule.  The [replay]
   subcommand re-executes a printed counterexample verbatim.

   Examples:
     fuzz.exe --protocol snapshot --iterations 2000
     fuzz.exe --protocol double_collect --expect-bug
     fuzz.exe replay --protocol double_collect --inputs 1,1 \
       --wiring '1,2;2,1' --script '1,2,2,1,...'            *)

open Cmdliner

let protocols = String.concat ", " Fuzzing.Targets.keys

let protocol_arg =
  Arg.(
    value
    & opt string "snapshot"
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:(Printf.sprintf "Protocol to fuzz: one of %s." protocols))

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed; every case derives from it.")

let iterations_arg =
  Arg.(
    value & opt int 1_000
    & info [ "iterations" ] ~docv:"K" ~doc:"Maximum number of cases to run.")

let time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SECONDS"
        ~doc:"Stop the campaign after this much wall-clock time.")

let min_n_arg =
  Arg.(
    value & opt int 2
    & info [ "min-n" ] ~docv:"N" ~doc:"Smallest number of processors.")

let max_n_arg =
  Arg.(
    value & opt int 5
    & info [ "max-n" ] ~docv:"N" ~doc:"Largest number of processors.")

let m_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "m" ] ~docv:"M"
        ~doc:"Number of registers (default: the standard m = n).")

let max_steps_arg =
  Arg.(
    value & opt int 5_000
    & info [ "max-steps" ] ~docv:"K"
        ~doc:"Global step budget of each generated execution.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Shard campaign iterations across $(docv) OCaml domains.  Case \
           seeds derive from (campaign seed, iteration) alone and the \
           smallest failing iteration wins, so the reported counterexample \
           and its shrunk instance are identical for every domain count \
           (absent --time-budget).")

let fault_profile_arg =
  Arg.(
    value
    & opt string "none"
    & info [ "fault-profile" ] ~docv:"PROFILE"
        ~doc:
          (Printf.sprintf
             "Inject seeded fault plans into every case: one of %s."
             (String.concat ", " Fuzzing.Fault_gen.names)))

let expect_bug_arg =
  Arg.(
    value & flag
    & info [ "expect-bug" ]
        ~doc:
          "Invert the exit status: succeed only if a counterexample is \
           found (used to pin down planted bugs in known-unsound \
           protocols).")

let ints_of_string s =
  String.split_on_char ',' (String.trim s)
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun x -> int_of_string (String.trim x))

let with_target key f =
  match Fuzzing.Targets.find key with
  | Some t -> f t
  | None ->
      `Error
        (false, Printf.sprintf "unknown protocol %S (try one of %s)" key protocols)

(* campaign (default command) *)

let run_campaign key seed iterations time_budget domains min_n max_n m
    max_steps fault_profile expect_bug =
  match Fuzzing.Fault_gen.of_string fault_profile with
  | None ->
      `Error
        ( false,
          Printf.sprintf "unknown fault profile %S (try one of %s)"
            fault_profile
            (String.concat ", " Fuzzing.Fault_gen.names) )
  | Some fault_profile ->
  with_target key (fun (module T : Fuzzing.Target.S) ->
      let module H = Fuzzing.Harness.Make (T) in
      let report =
        H.campaign ~now:Unix.gettimeofday ?time_budget ~domains ?m
          ~n_range:(min_n, max_n) ~max_steps ~fault_profile ~seed ~iterations ()
      in
      Fmt.pr "%a@." (H.pp_report ~key) report;
      (* Runtime outcomes exit with [some_error] (123), not the CLI-error
         status cmdliner reserves for bad invocations. *)
      match (report.Fuzzing.Harness.counterexample, expect_bug) with
      | Some _, true | None, false -> `Ok ()
      | Some _, false ->
          Fmt.epr "fuzz: counterexample found@.";
          Stdlib.exit Cmd.Exit.some_error
      | None, true ->
          Fmt.epr "fuzz: expected to find a planted bug but none surfaced@.";
          Stdlib.exit Cmd.Exit.some_error)

let campaign_term =
  Term.(
    ret
      (const run_campaign $ protocol_arg $ seed_arg $ iterations_arg
     $ time_budget_arg $ domains_arg $ min_n_arg $ max_n_arg $ m_arg
     $ max_steps_arg $ fault_profile_arg $ expect_bug_arg))

(* replay *)

let inputs_req =
  Arg.(
    required
    & opt (some string) None
    & info [ "i"; "inputs" ] ~docv:"INPUTS"
        ~doc:"Comma-separated processor inputs (group identifiers).")

let wiring_req =
  Arg.(
    required
    & opt (some string) None
    & info [ "wiring" ] ~docv:"WIRING"
        ~doc:
          "Hidden wiring: one permutation per processor, rows separated by \
           ';', 1-based physical register per local index (e.g. \
           '1,2,3;3,1,2').")

let script_req =
  Arg.(
    required
    & opt (some string) None
    & info [ "script" ] ~docv:"SCRIPT"
        ~doc:"Comma-separated 1-based processor schedule to replay.")

let fault_plan_arg =
  Arg.(
    value
    & opt string ""
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Fault plan to re-inject during the replay, as printed by the \
           campaign: ';'-separated events like 'crash:p2\\@10', \
           'recover:p3\\@8', 'omit:p1\\@4', 'stale:p1\\@6', 'stuck:r2\\@0' \
           (1-based processors/registers, 0-based global step times).")

let run_replay key inputs wiring script fault_plan =
  with_target key (fun (module T : Fuzzing.Target.S) ->
      let module H = Fuzzing.Harness.Make (T) in
      match
        let inputs = Array.of_list (ints_of_string inputs) in
        let wiring_perms =
          String.split_on_char ';' wiring
          |> List.map (fun row -> List.map pred (ints_of_string row))
        in
        let script = List.map pred (ints_of_string script) in
        let inst =
          {
            Fuzzing.Harness.n = Array.length inputs;
            m =
              (match wiring_perms with
              | row :: _ -> List.length row
              | [] -> invalid_arg "empty wiring");
            wiring_perms;
            inputs;
            script;
            faults = Anonmem.Fault.of_string fault_plan;
          }
        in
        (* Validates the wiring/instance shape before running. *)
        ignore (Anonmem.Wiring.of_lists wiring_perms);
        (inst, H.run_instance inst)
      with
      | exception (Invalid_argument msg | Failure msg) -> `Error (false, msg)
      | inst, run ->
          Fmt.pr "%a@." Repro_util.Text_table.pp (H.trace_table inst);
          (match
             H.verdict ~n:inst.Fuzzing.Harness.n ~m:inst.Fuzzing.Harness.m
               ~inputs:inst.Fuzzing.Harness.inputs run
           with
          | Ok () -> Fmt.pr "verdict: no violation@."
          | Error f -> Fmt.pr "verdict: %a@." Tasks.Task_failure.pp f);
          `Ok ())

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a shrunk counterexample (as printed by a campaign) and \
          re-judge it.")
    Term.(
      ret
        (const run_replay $ protocol_arg $ inputs_req $ wiring_req $ script_req
       $ fault_plan_arg))

let main_cmd =
  let doc =
    "schedule fuzzing with counterexample shrinking for the fully-anonymous \
     shared-memory algorithms"
  in
  Cmd.group ~default:campaign_term (Cmd.info "fuzz" ~version:"1.0.0" ~doc) [ replay_cmd ]

let () = exit (Cmd.eval main_cmd)
