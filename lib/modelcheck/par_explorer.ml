(** Parallel breadth-first exploration on a pool of OCaml 5 domains.

    The frontier is sharded by state ownership: the canonical key of a
    state hashes to the domain that owns it ([Hashtbl.hash key mod
    domains]), and only the owner ever touches that state's visited-table
    entry, parent link, or outgoing bookkeeping — so the per-shard
    structures need no locks at all.  Work crosses shards through per-pair
    channels: when domain [a] expands a state whose successor belongs to
    domain [b], it appends the successor to a batch bound for [b] and
    pushes the batch onto the lock-free channel [a -> b] (a Treiber stack
    of batches; single producer, drained wholesale by the consumer with
    [Atomic.exchange]).

    Exploration is {b layer-synchronous}: every domain expands its slice
    of BFS layer [k], a barrier, every domain absorbs the batches
    addressed to it (assigning ids to the novel states of layer [k+1]), a
    second barrier, and all domains take the identical continue/stop
    decision from per-worker counters that are only written on the other
    side of a barrier from where they are read.  Layer synchrony is what
    preserves the sequential explorer's guarantees: states are discovered
    at their true BFS depth, so parent chains — and therefore
    counterexample traces — are still shortest, and the visited-state,
    transition and terminal counts are exactly those of the sequential
    BFS (which the differential suite asserts).  Which parent a state
    gets when two same-layer predecessors reach it is arrival-order
    dependent, so traces are deterministic in {e length}, not in the
    identity of the interleaving they witness.

    An invariant violation is flagged atomically and the layer runs to
    completion before the pool stops, so a reported violation always lies
    on the first violating layer — minimal trace length, as in the
    sequential BFS.  The [max_states] bound is likewise checked at layer
    boundaries, so it can overshoot by at most one layer.

    Global ids interleave shards ([gid = local * domains + shard]) and
    edges are recorded by the {e destination}'s owner as batches are
    absorbed; after the pool joins, wait-freedom is decided sequentially
    by the shared {!Scc} pass over the merged edge image, exactly as in
    {!Explorer}.  Composes with [~reduction]: keys are canonicalized
    ({!Canon}) before hashing, so ownership respects symmetry orbits by
    construction. *)

open Repro_util

(* A barrier for [parties] domains.  Mutex + condition rather than a spin
   loop: the pool frequently runs on fewer cores than domains (the
   benches report 1/2/4-domain rows from a single-core box), where
   spinning would serialize horribly. *)
module Barrier = struct
  type t = {
    mutex : Mutex.t;
    cond : Condition.t;
    parties : int;
    mutable count : int;
    mutable phase : int;
  }

  let make parties =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      parties;
      count = 0;
      phase = 0;
    }

  let await t =
    Mutex.lock t.mutex;
    let phase = t.phase in
    t.count <- t.count + 1;
    if t.count = t.parties then begin
      t.count <- 0;
      t.phase <- phase + 1;
      Condition.broadcast t.cond
    end
    else
      while t.phase = phase do
        Condition.wait t.cond t.mutex
      done;
    Mutex.unlock t.mutex
end

(* Lock-free channel of message batches (Treiber push / exchange drain). *)
module Chan = struct
  type 'a t = 'a list list Atomic.t

  let make () : 'a t = Atomic.make []

  let push t batch =
    if batch <> [] then begin
      let rec go () =
        let cur = Atomic.get t in
        if not (Atomic.compare_and_set t cur (batch :: cur)) then go ()
      in
      go ()
    end

  let drain t = Atomic.exchange t []
end

module Make (P : Explorer.CHECKABLE) = struct
  module E = Explorer.Make (P)

  type stats = {
    domains : int;
    states : int;
    transitions : int;
    terminals : int;
    layers : int;  (** BFS depth of the deepest state, plus one *)
  }

  type result =
    | Par_ok of { stats : stats; wait_free : bool; divergent : int list }
    | Par_invariant_failed of {
        stats : stats;
        message : string;
        trace : (int * E.state) list;
            (** shortest-length witness; concretized when reduced *)
      }
    | Par_state_limit of int

  type shard = {
    table : State_table.t;
        (** canonical key -> local id, keys held inline in the shard's
            arena (local id = per-shard insertion order) *)
    parent : int Vec.t;  (** (predecessor gid lsl 4) lor pid; -1 at root *)
    edge_src : int Vec.t;  (** (src gid lsl 4) lor pid *)
    edge_dst : int Vec.t;  (** dst gid *)
    mutable terminal : int;  (** count of all-halted states owned here *)
    mutable transitions : int;
    (* written by the owner during a phase, read by everyone on the other
       side of the next barrier — never concurrently *)
    mutable layer_added : int;
    mutable size_snapshot : int;
    mutable violation_seen : bool;
        (** this worker's view of the violation cell, frozen with the other
            snapshots: the decision point must NOT read the atomic directly
            — a fast worker already expanding the next layer could set it
            after a slow worker has read it, splitting the [continue]
            verdict and deadlocking the barrier *)
  }

  (** [explore ~domains ...] — the parallel counterpart of
      {!Explorer.Make.explore}; same optional knobs, same semantics for
      [invariant] / [stop_expansion] / [reduction].  [domains] is the pool
      size (>= 1); the calling domain doubles as worker 0. *)
  let explore ?(max_states = 50_000_000) ?invariant ?stop_expansion
      ?(reduction = false) ~domains ~cfg ~wiring ~inputs () =
    Explorer.guard_processors ~engine:"Par_explorer.explore" (P.processors cfg);
    if domains < 1 then invalid_arg "Par_explorer.explore: domains < 1";
    let nd = domains in
    let canon =
      if reduction then Some (E.canon_of ~cfg ~wiring ~inputs) else None
    in
    let canonical key =
      match canon with Some c -> Canon.canonicalize c key | None -> key
    in
    let owner key = (Hashtbl.hash key land max_int) mod nd in
    let shards =
      Array.init nd (fun _ ->
          {
            table =
              State_table.create ~key_width:(E.key_width cfg) ();
            parent = Vec.create ();
            edge_src = Vec.create ();
            edge_dst = Vec.create ();
            terminal = 0;
            transitions = 0;
            layer_added = 0;
            size_snapshot = 0;
            violation_seen = false;
          })
    in
    (* chans.(src).(dst): batches of (canonical key, packed provenance) *)
    let chans = Array.init nd (fun _ -> Array.init nd (fun _ -> Chan.make ())) in
    let barrier = Barrier.make nd in
    let violation : (int * string) option Atomic.t = Atomic.make None in
    let layers = Atomic.make 0 in
    (* Per-worker body.  Frontiers hold local ids. *)
    let worker w =
      let shard = shards.(w) in
      let gid lid = (lid * nd) + w in
      let added = ref 0 in
      let frontier = ref [] and next_frontier = ref [] in
      (* Only called for keys just probed absent, so [intern] inserts. *)
      let create key ~from =
        let lid = State_table.intern shard.table key in
        ignore (Vec.push shard.parent from);
        incr added;
        next_frontier := lid :: !next_frontier;
        (match invariant with
        | Some check -> (
            match check (E.decode_state cfg key) with
            | Ok () -> ()
            | Error message ->
                ignore
                  (Atomic.compare_and_set violation None
                     (Some (gid lid, message))))
        | None -> ());
        lid
      in
      let record_edge ~from ~dst_gid =
        ignore (Vec.push shard.edge_src from);
        ignore (Vec.push shard.edge_dst dst_gid)
      in
      let deliver key ~from =
        (* Owner-side arrival: resolve or mint the id, then record the
           edge (the destination's owner records every edge). *)
        let lid =
          match State_table.find shard.table key with
          | Some lid -> lid
          | None -> create key ~from
        in
        record_edge ~from ~dst_gid:(gid lid)
      in
      (* Seed: the initial state belongs to whoever owns its key. *)
      let init_key = canonical (E.encode_state cfg (E.init_state ~cfg ~inputs)) in
      if owner init_key = w then begin
        ignore (create init_key ~from:(-1));
        frontier := !next_frontier;
        next_frontier := []
      end;
      let continue = ref true in
      while !continue do
        (* Phase 1: expand this shard's slice of the current layer. *)
        let batches = Array.make nd [] in
        List.iter
          (fun lid ->
            let st =
              E.decode_state cfg (State_table.key_of_id shard.table lid)
            in
            let expand =
              match stop_expansion with Some f -> not (f st) | None -> true
            in
            if expand then
              match E.enabled cfg st with
              | [] -> shard.terminal <- shard.terminal + 1
              | en ->
                  List.iter
                    (fun p ->
                      shard.transitions <- shard.transitions + 1;
                      let st' = E.successor cfg wiring st p in
                      let key' = canonical (E.encode_state cfg st') in
                      let from = (gid lid lsl 4) lor p in
                      let dst = owner key' in
                      if dst = w then deliver key' ~from
                      else batches.(dst) <- (key', from) :: batches.(dst))
                    en)
          (List.rev !frontier);
        Array.iteri (fun dst batch -> Chan.push chans.(w).(dst) batch) batches;
        Barrier.await barrier;
        (* Phase 2: absorb everything addressed to this shard. *)
        for src = 0 to nd - 1 do
          if src <> w then
            List.iter
              (fun batch ->
                List.iter (fun (key, from) -> deliver key ~from) (List.rev batch))
              (List.rev (Chan.drain chans.(src).(w)))
        done;
        shard.layer_added <- !added;
        shard.size_snapshot <- State_table.length shard.table;
        shard.violation_seen <- Atomic.get violation <> None;
        added := 0;
        Barrier.await barrier;
        (* Decision point: every worker computes the same verdict from
           snapshots frozen by the barrier.  The violation cell is read
           only through the frozen per-shard views: any CAS is visible to
           at least its own worker's snapshot, and nobody rewrites a
           snapshot until every worker has passed the next barrier, so the
           OR below is identical across workers. *)
        let total_added = ref 0 and total_states = ref 0 in
        let violated = ref false in
        Array.iter
          (fun s ->
            total_added := !total_added + s.layer_added;
            total_states := !total_states + s.size_snapshot;
            if s.violation_seen then violated := true)
          shards;
        if w = 0 && !total_added > 0 then Atomic.incr layers;
        if !total_added = 0 || !violated || !total_states >= max_states then
          continue := false
        else begin
          frontier := List.rev !next_frontier;
          next_frontier := []
        end
      done
    in
    let pool = Array.init (nd - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    worker 0;
    Array.iter Domain.join pool;
    (* Post-pool: the calling domain owns everything again. *)
    let states =
      Array.fold_left (fun a s -> a + State_table.length s.table) 0 shards
    in
    let stats =
      {
        domains = nd;
        states;
        transitions = Array.fold_left (fun a s -> a + s.transitions) 0 shards;
        terminals = Array.fold_left (fun a s -> a + s.terminal) 0 shards;
        layers = Atomic.get layers;
      }
    in
    let key_of gid = State_table.key_of_id shards.(gid mod nd).table (gid / nd) in
    let parent_of gid = Vec.get shards.(gid mod nd).parent (gid / nd) in
    let trace_of gid =
      let rec up gid acc =
        let packed = parent_of gid in
        if packed < 0 then acc
        else up (packed asr 4) ((packed land 15, key_of gid) :: acc)
      in
      let chain = up gid [] in
      match canon with
      | None ->
          List.map (fun (p, key) -> (p, E.decode_state cfg key)) chain
      | Some c ->
          E.concretize ~cfg ~wiring ~canon:c ~inputs (List.map snd chain)
    in
    match Atomic.get violation with
    | Some (gid, message) ->
        Par_invariant_failed { stats; message; trace = trace_of gid }
    | None ->
        if states >= max_states then Par_state_limit states
        else begin
          (* Densify gids (shards have unequal sizes, so the interleaved
             gids are not contiguous) and run the shared SCC pass. *)
          let offset = Array.make (nd + 1) 0 in
          for s = 0 to nd - 1 do
            offset.(s + 1) <- offset.(s) + State_table.length shards.(s).table
          done;
          let dense gid = offset.(gid mod nd) + (gid / nd) in
          let e = stats.transitions in
          let deg = Array.make (states + 1) 0 in
          Array.iter
            (fun s ->
              Vec.iteri
                (fun _ packed ->
                  let u = dense (packed asr 4) in
                  deg.(u + 1) <- deg.(u + 1) + 1)
                s.edge_src)
            shards;
          for i = 1 to states do
            deg.(i) <- deg.(i) + deg.(i - 1)
          done;
          let adj = Array.make (max e 1) 0 in
          let labels = Array.make (max e 1) 0 in
          let cursor = Array.copy deg in
          Array.iter
            (fun s ->
              Vec.iteri
                (fun i packed ->
                  let u = dense (packed asr 4) in
                  adj.(cursor.(u)) <- dense (Vec.get s.edge_dst i);
                  labels.(cursor.(u)) <- packed land 15;
                  cursor.(u) <- cursor.(u) + 1)
                s.edge_src)
            shards;
          let comp, _ =
            Scc.tarjan ~n:states ~off:(Array.get deg) ~adj:(Array.get adj)
          in
          let bad = Hashtbl.create 8 in
          for u = 0 to states - 1 do
            for i = deg.(u) to deg.(u + 1) - 1 do
              if comp.(u) = comp.(adj.(i)) then Hashtbl.replace bad labels.(i) ()
            done
          done;
          let divergent =
            List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) bad [])
          in
          Par_ok { stats; wait_free = divergent = []; divergent }
        end

  (** Parallel counterpart of {!Explorer.Make.check_all_wirings}: same
      summary type, same error messages, so {!Core} and the CLI can swap
      engines behind one interface. *)
  let check_all_wirings ?max_states ?invariant ?(require_wait_free = true)
      ?on_wiring ?wirings ?(reduction = false) ~domains ~cfg ~inputs () =
    let n = P.processors cfg and m = P.registers cfg in
    let wirings =
      match wirings with
      | Some ws -> ws
      | None -> Anonmem.Wiring.enumerate ~n ~m ~fix_first:true
    in
    let rec go (summary : Explorer.summary) = function
      | [] -> Ok summary
      | wiring :: rest -> (
          match
            explore ?max_states ?invariant ?stop_expansion:None ~reduction
              ~domains ~cfg ~wiring ~inputs ()
          with
          | Par_state_limit k ->
              Error (Fmt.str "state limit hit at %d states" k)
          | Par_invariant_failed { message; _ } ->
              Error
                (Fmt.str "invariant violated under wiring %a: %s"
                   Anonmem.Wiring.pp wiring message)
          | Par_ok { stats; wait_free; divergent } ->
              if require_wait_free && not wait_free then
                Error
                  (Fmt.str
                     "wait-freedom violated under wiring %a: processors %a \
                      diverge"
                     Anonmem.Wiring.pp wiring
                     Fmt.(list ~sep:comma int)
                     divergent)
              else begin
                let summary =
                  {
                    Explorer.wirings_checked = summary.wirings_checked + 1;
                    total_states = summary.total_states + stats.states;
                    max_space_states = max summary.max_space_states stats.states;
                    total_transitions =
                      summary.total_transitions + stats.transitions;
                    terminal_states = summary.terminal_states + stats.terminals;
                    total_pruned = summary.total_pruned;
                    all_wait_free = summary.all_wait_free && wait_free;
                  }
                in
                (match on_wiring with Some f -> f wiring summary | None -> ());
                go summary rest
              end)
    in
    go Explorer.empty_summary wirings
end
