lib/modelcheck/witness.ml: Anonmem Array Explorer Iset List Option Repro_util Rng Tasks
