lib/analysis/sweep.ml: Algorithms Anonmem Array Fun List Printf Repro_util Rng Stats Text_table
