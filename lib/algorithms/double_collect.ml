(** Baseline: the natural-but-wrong "double collect" termination rule for
    the fully-anonymous model.

    Section 4 of the paper observes that a processor cannot safely output
    its view as a snapshot merely because it read the same set of values in
    every register — not even twice in a row.  This protocol implements
    exactly that rule: write the view, scan, and terminate after two
    consecutive scans that read exactly the current view in every register.

    Under benign schedules it terminates quickly with correct-looking
    output, but under the Figure-2 adversary (see {!Analysis.Figure2}) two
    processors with the same input can be fed the incomparable sets {1,2}
    and {1,3} forever and will both terminate, violating the containment
    property of the snapshot task.  The test-suite exhibits the violation;
    the level mechanism of Figure 3 exists precisely to rule it out. *)

open Repro_util

type cfg = { n : int; m : int }

let cfg ~n ~m =
  if n < 1 || m < 1 then invalid_arg "Double_collect.cfg";
  { n; m }

let standard ~n = cfg ~n ~m:n

type value = Iset.t
type input = int
type output = Iset.t
(* As in {!Snapshot_core}, reads fold into the view immediately instead of
   through a separate accumulator — observably equivalent and cheaper to
   model-check. *)
type scan = { pos : int; all_own : bool }
type phase = Writing | Scanning of scan

type local = {
  view : Iset.t;
  next_write : int;
  streak : int;  (** consecutive scans that read exactly [view] everywhere *)
  phase : phase;
}

let name = "double-collect(broken)"
let processors c = c.n
let registers c = c.m
let register_init _ = Iset.empty

let init _ input =
  { view = Iset.singleton input; next_write = 0; streak = 0; phase = Writing }

let terminated l = l.streak >= 2 && l.phase = Writing

let halted _ l = terminated l

let next _ l =
  if terminated l then None
  else
    match l.phase with
    | Writing -> Some (Anonmem.Protocol.Write (l.next_write, l.view))
    | Scanning { pos; _ } -> Some (Anonmem.Protocol.Read pos)

let apply_write c l =
  match l.phase with
  | Scanning _ -> invalid_arg "Double_collect.apply_write: not writing"
  | Writing ->
      {
        l with
        next_write = (l.next_write + 1) mod c.m;
        phase = Scanning { pos = 0; all_own = true };
      }

let apply_read c l ~reg v =
  match l.phase with
  | Writing -> invalid_arg "Double_collect.apply_read: not scanning"
  | Scanning s ->
      if reg <> s.pos then invalid_arg "Double_collect.apply_read: wrong register";
      let all_own = s.all_own && Iset.equal v l.view in
      let view = if all_own then l.view else Iset.union l.view v in
      let s = { pos = s.pos + 1; all_own } in
      if s.pos < c.m then { l with view; phase = Scanning s }
      else
        {
          l with
          view;
          streak = (if s.all_own then l.streak + 1 else 0);
          phase = Writing;
        }

let output _ l = if terminated l then Some l.view else None
let view_of_local l = l.view
let pp_value _ = Iset.pp_set

let pp_local _ ppf l =
  Fmt.pf ppf "{view=%a streak=%d}" Iset.pp_set l.view l.streak

let pp_output _ = Iset.pp_set
