(** Allocation-free word-level bitmask helpers for the int-machine
    execution core: processor sets as single-word masks (bit [p] =
    processor [p]). *)

val max_width : int
(** Widest supported mask, 62 bits — the [Iset] bitset window. *)

val popcount : int -> int
(** Number of set bits (SWAR, no branches).  [x] must be non-negative. *)

val ctz : int -> int
(** Index of the lowest set bit.  [x] must be non-zero. *)

val nth_set : int -> int -> int
(** [nth_set mask k] is the [k]-th (0-based) set bit in increasing bit
    order — the mask analogue of [List.nth sorted_list k].  Requires
    [0 <= k < popcount mask]. *)

val full : int -> int
(** [full n] has bits [0..n-1] set (clamped to [max_width]). *)

val to_list : int -> int list
(** Set bits in increasing order. *)

val of_list : int list -> int
