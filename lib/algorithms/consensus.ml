(** Figure 5: obstruction-free consensus, by derandomizing Chandra's
    shared-coin algorithm (Chandra 1996) on top of the long-lived snapshot,
    following Guerraoui and Ruppert (2005).

    Each processor maintains a preference (initially its input) and a
    monotonically increasing timestamp (initially 0).  It repeatedly invokes
    the long-lived snapshot with the pair [(preference, timestamp)] as
    input.  Upon obtaining a snapshot it decides a value [v] if [v] appears
    with a timestamp at least 2 greater than the timestamp of any other
    value; otherwise it adopts the value with the highest timestamp and
    re-invokes with that timestamp plus one.

    All communication goes through the long-lived snapshot — the consensus
    layer never touches a register directly — so its steps cannot interfere
    with the snapshot protocol.  A processor running solo first adopts the
    leading value and then raises its timestamp twice, so the algorithm is
    obstruction-free; agreement holds in every execution
    ({!Tasks.Consensus_task} checks it). *)

open Repro_util

(** View elements: [(value, timestamp)] pairs. *)
module Pref = struct
  type t = int * int

  let compare (v1, t1) (v2, t2) =
    match Int.compare v1 v2 with 0 -> Int.compare t1 t2 | c -> c
end

module Pset = Sorted_set.Make (Pref)

module Pref_pp = struct
  let pp_elt ppf ((v, t) : Pref.t) = Fmt.pf ppf "%d@%d" v t
end

module Snap = Long_lived_snapshot.Make (Pset) (Pref_pp)

type cfg = Snap.cfg = { n : int; m : int }

let cfg = Snap.cfg
let standard ~n = Snap.standard ~n

type value = Snap.value
type input = int
type output = int

type local = {
  input : int;
  pref : int;
  ts : int;
  decided : int option;
  rounds : int;  (** completed snapshot invocations, for the benchmarks *)
  snap : Snap.local;
}

let name = "consensus(fig5)"
let processors = Snap.processors
let registers = Snap.registers
let register_init = Snap.register_init

let init c input =
  { input; pref = input; ts = 0; decided = None; rounds = 0; snap = Snap.init c (input, 0) }

let halted c l =
  match l.decided with Some _ -> true | None -> Snap.halted c l.snap

let next c l =
  match l.decided with None -> Snap.next c l.snap | Some _ -> None

let apply_write c l = { l with snap = Snap.apply_write c l.snap }

(** Highest timestamp carried by each value in a snapshot, as an
    association list sorted by value. *)
let leaders view =
  Pset.fold
    (fun (v, t) acc ->
      match List.assoc_opt v acc with
      | Some t' when t' >= t -> acc
      | _ -> (v, t) :: List.remove_assoc v acc)
    view []

(** The decision rule of Figure 5 applied to a completed snapshot: either
    [`Decide v] or [`Adopt (pref, ts)] for the next invocation.

    A value absent from the snapshot counts as having timestamp 0 — in
    Chandra's racing formulation both counters exist from the start at 0,
    and a decision requires being two {e ahead}, not merely unopposed.
    This reading is load-bearing: treating absent rivals as [-oo] (decide
    the moment your snapshot contains no other value) is falsified by our
    bounded model checker with a 60-step two-processor disagreement — a
    covering pattern keeps one processor's snapshot at its own singleton
    while the other pumps its timestamp in a parallel universe; see
    test_consensus.ml and EXPERIMENTS.md.  Requiring a lead of 2 over the
    implicit 0 forces a solo decider to raise its timestamp to 2 first,
    and the containment of snapshot outputs then prevents the split. *)
let resolve view =
  let l = leaders view in
  let v1, t1 =
    List.fold_left
      (fun (bv, bt) (v, t) ->
        if t > bt || (t = bt && v < bv) then (v, t) else (bv, bt))
      (max_int, min_int) l
  in
  let rival_ts =
    List.fold_left (fun acc (v, t) -> if v = v1 then acc else max acc t) 0 l
  in
  if t1 >= rival_ts + 2 then `Decide v1 else `Adopt (v1, t1 + 1)

let apply_read c l ~reg v =
  let snap = Snap.apply_read c l.snap ~reg v in
  if not (Snap.ready c snap) then { l with snap }
  else
    (* The invocation just completed: consume the snapshot and either
       decide or immediately re-invoke, all within this atomic step (local
       computation folds into the adjacent read, as in PlusCal). *)
    let l = { l with rounds = l.rounds + 1 } in
    match resolve (Snap.output_view snap) with
    | `Decide value -> { l with decided = Some value; snap }
    | `Adopt (pref, ts) ->
        { l with pref; ts; snap = Snap.invoke c snap (pref, ts) }

let output _ l = l.decided
let rounds_of_local l = l.rounds
let preference_of_local l = (l.pref, l.ts)
let pp_value = Snap.pp_value

let pp_local c ppf l =
  Fmt.pf ppf "{pref=%d ts=%d %a snap=%a}" l.pref l.ts
    (Fmt.option ~none:(Fmt.any "undecided") (fun ppf d ->
         Fmt.pf ppf "decided=%d" d))
    l.decided (Snap.pp_local c) l.snap

let pp_output _ = Fmt.int
