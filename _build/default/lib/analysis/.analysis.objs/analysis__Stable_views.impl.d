lib/analysis/stable_views.ml: Algorithms Anonmem Array Fun Iset List Repro_util Rng View_graph
