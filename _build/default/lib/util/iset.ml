include Sorted_set.Make (Int)

let of_range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (add i acc) in
  go hi empty

let to_bits s =
  fold
    (fun i acc ->
      if i < 0 || i >= Sys.int_size - 1 then
        invalid_arg "Iset.to_bits: element out of range"
      else acc lor (1 lsl i))
    s 0

let of_bits bits =
  let rec go i acc =
    if 1 lsl i > bits || i >= Sys.int_size - 1 then acc
    else go (i + 1) (if bits land (1 lsl i) <> 0 then add i acc else acc)
  in
  go 0 empty

let pp_set = pp Fmt.int
let to_string s = Fmt.str "%a" pp_set s
