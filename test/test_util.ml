(* Unit and property tests for the utility layer: canonical sorted sets,
   the deterministic RNG, permutations, graphs and growable vectors. *)

open Repro_util

let iset = Alcotest.testable (Fmt.of_to_string Iset.to_string) Iset.equal
let s l = Iset.of_list l

(* --- Iset / Sorted_set ------------------------------------------------- *)

let test_of_list_dedup_sorts () =
  Alcotest.check iset "dedup+sort" (s [ 1; 2; 3 ]) (Iset.of_list [ 3; 1; 2; 3; 1 ])

let test_union () =
  Alcotest.check iset "union" (s [ 1; 2; 3; 4 ]) (Iset.union (s [ 1; 3 ]) (s [ 2; 3; 4 ]));
  Alcotest.check iset "union empty" (s [ 1 ]) (Iset.union Iset.empty (s [ 1 ]))

let test_inter_diff () =
  Alcotest.check iset "inter" (s [ 2; 3 ]) (Iset.inter (s [ 1; 2; 3 ]) (s [ 2; 3; 4 ]));
  Alcotest.check iset "diff" (s [ 1 ]) (Iset.diff (s [ 1; 2; 3 ]) (s [ 2; 3; 4 ]))

let test_subset () =
  Alcotest.(check bool) "subset yes" true (Iset.subset (s [ 1; 3 ]) (s [ 1; 2; 3 ]));
  Alcotest.(check bool) "subset no" false (Iset.subset (s [ 1; 4 ]) (s [ 1; 2; 3 ]));
  Alcotest.(check bool) "strict no (equal)" false
    (Iset.strict_subset (s [ 1; 2 ]) (s [ 1; 2 ]));
  Alcotest.(check bool) "comparable both ways" true
    (Iset.comparable (s [ 1; 2; 3 ]) (s [ 1; 2 ]));
  Alcotest.(check bool) "incomparable" false
    (Iset.comparable (s [ 1; 2 ]) (s [ 1; 3 ]))

let test_rank () =
  Alcotest.(check (option int)) "rank first" (Some 1) (Iset.rank 2 (s [ 2; 5; 9 ]));
  Alcotest.(check (option int)) "rank mid" (Some 2) (Iset.rank 5 (s [ 2; 5; 9 ]));
  Alcotest.(check (option int)) "rank absent" None (Iset.rank 4 (s [ 2; 5; 9 ]))

let test_bits_roundtrip () =
  let sets = [ []; [ 0 ]; [ 7 ]; [ 1; 3; 5 ]; [ 0; 1; 2; 3; 4; 5; 6; 7 ] ] in
  List.iter
    (fun l ->
      Alcotest.check iset "roundtrip" (s l) (Iset.of_bits (Iset.to_bits (s l))))
    sets;
  Alcotest.check_raises "negative element rejected"
    (Invalid_argument "Iset.to_bits: element out of range") (fun () ->
      ignore (Iset.to_bits (s [ -1 ])))

let test_structural_equality_is_canonical () =
  (* The property the model checker depends on: structurally equal iff
     set-equal, and polymorphic hash agrees. *)
  let a = Iset.add 1 (Iset.add 3 (Iset.add 2 Iset.empty)) in
  let b = Iset.union (s [ 3 ]) (Iset.of_list [ 2; 1 ]) in
  Alcotest.(check bool) "physeq-free structural equality" true (a = b);
  Alcotest.(check int) "hash agrees" (Hashtbl.hash a) (Hashtbl.hash b)

let iset_gen =
  QCheck.Gen.(map Iset.of_list (list_size (int_bound 8) (int_bound 7)))

let arb_iset = QCheck.make ~print:Iset.to_string iset_gen

let prop_union_commutative =
  QCheck.Test.make ~name:"union commutative" ~count:500
    (QCheck.pair arb_iset arb_iset) (fun (a, b) ->
      Iset.equal (Iset.union a b) (Iset.union b a))

let prop_union_assoc =
  QCheck.Test.make ~name:"union associative" ~count:500
    (QCheck.triple arb_iset arb_iset arb_iset) (fun (a, b, c) ->
      Iset.equal (Iset.union a (Iset.union b c)) (Iset.union (Iset.union a b) c))

let prop_subset_antisym =
  QCheck.Test.make ~name:"subset antisymmetric" ~count:500
    (QCheck.pair arb_iset arb_iset) (fun (a, b) ->
      QCheck.assume (Iset.subset a b && Iset.subset b a);
      Iset.equal a b)

let prop_diff_inter_partition =
  QCheck.Test.make ~name:"diff+inter partition" ~count:500
    (QCheck.pair arb_iset arb_iset) (fun (a, b) ->
      Iset.equal a (Iset.union (Iset.diff a b) (Iset.inter a b)))

let prop_mem_add =
  QCheck.Test.make ~name:"mem after add" ~count:500
    (QCheck.pair QCheck.(int_bound 7) arb_iset) (fun (x, a) ->
      Iset.mem x (Iset.add x a))

let prop_cardinal_monotone =
  QCheck.Test.make ~name:"union cardinality bounds" ~count:500
    (QCheck.pair arb_iset arb_iset) (fun (a, b) ->
      let u = Iset.cardinal (Iset.union a b) in
      u >= max (Iset.cardinal a) (Iset.cardinal b)
      && u <= Iset.cardinal a + Iset.cardinal b)

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 13)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_split_independent () =
  let a = Rng.create ~seed:3 in
  let child = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int child 100) in
  let ys = List.init 10 (fun _ -> Rng.int a 100) in
  Alcotest.(check bool) "child differs from parent continuation" true (xs <> ys)

let test_rng_permutation_valid () =
  let rng = Rng.create ~seed:5 in
  for n = 1 to 10 do
    let p = Rng.permutation rng n in
    let sorted = Array.copy p in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "is permutation" (Array.init n Fun.id) sorted
  done

(* --- Permutation -------------------------------------------------------- *)

let test_permutation_inverse () =
  let p = Permutation.of_list [ 2; 0; 3; 1 ] in
  let inv = Permutation.inverse p in
  for i = 0 to 3 do
    Alcotest.(check int) "inv∘p = id" i (Permutation.apply inv (Permutation.apply p i))
  done

let test_permutation_compose () =
  let p = Permutation.of_list [ 1; 2; 0 ] in
  let q = Permutation.of_list [ 2; 1; 0 ] in
  let pq = Permutation.compose p q in
  for i = 0 to 2 do
    Alcotest.(check int) "compose"
      (Permutation.apply p (Permutation.apply q i))
      (Permutation.apply pq i)
  done

let test_permutation_enumerate () =
  Alcotest.(check int) "3! = 6" 6 (List.length (Permutation.enumerate 3));
  Alcotest.(check int) "4! = 24" 24 (List.length (Permutation.enumerate 4));
  let all = Permutation.enumerate 3 in
  let distinct = List.sort_uniq compare (List.map Permutation.to_list all) in
  Alcotest.(check int) "all distinct" 6 (List.length distinct)

let perm_of_seed n seed = Permutation.random (Rng.create ~seed) n

let arb_perm =
  QCheck.make
    ~print:(fun (n, seed) -> Fmt.str "%a" Permutation.pp (perm_of_seed n seed))
    QCheck.Gen.(pair (int_range 1 8) (int_bound 1_000_000))

(* Two independent permutations of the same size. *)
let arb_perm_pair =
  QCheck.make
    ~print:(fun (n, s1, s2) ->
      Fmt.str "%a, %a" Permutation.pp (perm_of_seed n s1) Permutation.pp
        (perm_of_seed n s2))
    QCheck.Gen.(triple (int_range 1 8) (int_bound 1_000_000) (int_bound 1_000_000))

let prop_perm_inverse_roundtrip =
  QCheck.Test.make ~name:"p . p^-1 = p^-1 . p = id" ~count:500 arb_perm
    (fun (n, seed) ->
      let p = perm_of_seed n seed in
      let id = Permutation.identity n in
      Permutation.equal (Permutation.compose p (Permutation.inverse p)) id
      && Permutation.equal (Permutation.compose (Permutation.inverse p) p) id)

let prop_perm_inverse_involutive =
  QCheck.Test.make ~name:"(p^-1)^-1 = p" ~count:500 arb_perm (fun (n, seed) ->
      let p = perm_of_seed n seed in
      Permutation.equal (Permutation.inverse (Permutation.inverse p)) p)

let prop_perm_compose_apply =
  QCheck.Test.make ~name:"apply (compose f g) = apply f . apply g" ~count:500
    arb_perm_pair (fun (n, s1, s2) ->
      let f = perm_of_seed n s1 and g = perm_of_seed n s2 in
      let fg = Permutation.compose f g in
      List.for_all
        (fun i ->
          Permutation.apply fg i = Permutation.apply f (Permutation.apply g i))
        (List.init n Fun.id))

let prop_perm_inverse_antihomomorphism =
  QCheck.Test.make ~name:"(f . g)^-1 = g^-1 . f^-1" ~count:500 arb_perm_pair
    (fun (n, s1, s2) ->
      let f = perm_of_seed n s1 and g = perm_of_seed n s2 in
      Permutation.equal
        (Permutation.inverse (Permutation.compose f g))
        (Permutation.compose (Permutation.inverse g) (Permutation.inverse f)))

let prop_perm_compose_roundtrip =
  QCheck.Test.make ~name:"compose then undo recovers g" ~count:500
    arb_perm_pair (fun (n, s1, s2) ->
      let f = perm_of_seed n s1 and g = perm_of_seed n s2 in
      Permutation.equal
        (Permutation.compose (Permutation.inverse f) (Permutation.compose f g))
        g)

let test_permutation_invalid () =
  Alcotest.check_raises "dup" (Invalid_argument "Permutation.of_array: not a permutation")
    (fun () -> ignore (Permutation.of_list [ 0; 0; 1 ]));
  Alcotest.check_raises "range" (Invalid_argument "Permutation.of_array: not a permutation")
    (fun () -> ignore (Permutation.of_list [ 0; 3 ]))

(* --- Digraph ------------------------------------------------------------ *)

let test_digraph_sources () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 1 3;
  Alcotest.(check (list int)) "single source" [ 0 ] (Digraph.sources g);
  Alcotest.(check bool) "acyclic" true (Digraph.is_acyclic g)

let test_digraph_cycle () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 0;
  Alcotest.(check bool) "cyclic" false (Digraph.is_acyclic g);
  let _, count = Digraph.scc_ids g in
  Alcotest.(check int) "one SCC" 1 count

let test_digraph_sccs () =
  (* two 2-cycles joined by a bridge plus an isolated vertex *)
  let g = Digraph.create 5 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 0;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 3;
  Digraph.add_edge g 3 2;
  let comp, count = Digraph.scc_ids g in
  Alcotest.(check int) "3 SCCs" 3 count;
  Alcotest.(check bool) "0,1 together" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "2,3 together" true (comp.(2) = comp.(3));
  Alcotest.(check bool) "bridge separates" true (comp.(1) <> comp.(2))

let test_digraph_self_loop () =
  let g = Digraph.create 2 in
  Digraph.add_edge g 0 0;
  Alcotest.(check bool) "self loop not acyclic" false (Digraph.is_acyclic g);
  Alcotest.(check bool) "has_self_loop" true (Digraph.has_self_loop g 0);
  Alcotest.(check bool) "no self loop on 1" false (Digraph.has_self_loop g 1)

let test_digraph_reachable () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 2 3;
  let r = Digraph.reachable_from g [ 0 ] in
  Alcotest.(check bool) "0 reaches 1" true r.(1);
  Alcotest.(check bool) "0 misses 3" false r.(3)

(* --- Vec ---------------------------------------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Alcotest.(check int) "index returned" i (Vec.push v (i * i))
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "get" (25 * 25) (Vec.get v 25);
  Vec.set v 25 7;
  Alcotest.(check int) "set" 7 (Vec.get v 25);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1000))

let test_vec_to_array () =
  let v = Vec.create () in
  List.iter (fun x -> ignore (Vec.push v x)) [ 3; 1; 4 ];
  Alcotest.(check (array int)) "to_array" [| 3; 1; 4 |] (Vec.to_array v)

(* --- Stats ---------------------------------------------------------------- *)

let test_stats_summary () =
  match Stats.summarize [ 5; 1; 3; 2; 4 ] with
  | None -> Alcotest.fail "non-empty"
  | Some s ->
      Alcotest.(check int) "count" 5 s.Stats.count;
      Alcotest.(check int) "min" 1 s.Stats.min;
      Alcotest.(check int) "max" 5 s.Stats.max;
      Alcotest.(check int) "median" 3 s.Stats.median;
      Alcotest.(check (float 0.001)) "mean" 3.0 s.Stats.mean

let test_stats_empty () =
  Alcotest.(check bool) "empty summarize" true (Stats.summarize [] = None);
  Alcotest.(check bool) "empty median" true (Stats.median [] = None)

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> i + 1) in
  Alcotest.(check (option int)) "p50 of 1..100" (Some 50) (Stats.percentile 0.5 xs);
  Alcotest.(check (option int)) "p90" (Some 90) (Stats.percentile 0.9 xs);
  Alcotest.(check (option int)) "p100" (Some 100) (Stats.percentile 1.0 xs);
  Alcotest.(check (option int)) "singleton" (Some 7) (Stats.percentile 0.9 [ 7 ])

let prop_median_is_member =
  QCheck.Test.make ~name:"median is a member" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) small_nat)
    (fun xs ->
      match Stats.median xs with Some m -> List.mem m xs | None -> false)

let prop_summary_bounds =
  QCheck.Test.make ~name:"min <= median <= p90 <= max" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) small_nat)
    (fun xs ->
      match Stats.summarize xs with
      | None -> false
      | Some s ->
          s.Stats.min <= s.Stats.median
          && s.Stats.median <= s.Stats.p90
          && s.Stats.p90 <= s.Stats.max)

(* --- Digraph properties ----------------------------------------------------- *)

let prop_forward_edges_acyclic =
  QCheck.Test.make ~name:"graphs with only forward edges are acyclic" ~count:200
    QCheck.(pair (int_range 2 15) (list (pair (int_bound 14) (int_bound 14))))
    (fun (n, edges) ->
      let g = Digraph.create n in
      List.iter
        (fun (a, b) ->
          let a = a mod n and b = b mod n in
          if a < b then Digraph.add_edge g a b)
        edges;
      Digraph.is_acyclic g)

let prop_scc_condensation_sound =
  QCheck.Test.make ~name:"SCC ids: edge endpoints in same or earlier component"
    ~count:200
    QCheck.(pair (int_range 2 12) (list (pair (int_bound 11) (int_bound 11))))
    (fun (n, edges) ->
      let g = Digraph.create n in
      List.iter
        (fun (a, b) -> Digraph.add_edge g (a mod n) (b mod n))
        edges;
      let comp, count = Digraph.scc_ids g in
      Array.for_all (fun c -> c >= 0 && c < count) comp
      (* reverse topological numbering: an edge u->v has comp u >= comp v *)
      && List.for_all
           (fun v ->
             List.for_all (fun w -> comp.(v) >= comp.(w)) (Digraph.successors g v))
           (List.init n Fun.id))

(* --- Text_table ---------------------------------------------------------- *)

let test_table_render () =
  let t = Text_table.create ~headers:[ "a"; "bb" ] in
  Text_table.add_row t [ "xxx"; "y" ];
  Text_table.add_row t [ "z" ];
  let out = Text_table.render t in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 1 = "a");
  Alcotest.(check int) "4 lines" 4
    (List.length (String.split_on_char '\n' (String.trim out)));
  Alcotest.check_raises "too wide"
    (Invalid_argument "Text_table.add_row: row wider than header") (fun () ->
      Text_table.add_row t [ "1"; "2"; "3" ])

let () =
  Alcotest.run "util"
    [
      ( "iset",
        [
          Alcotest.test_case "of_list dedups and sorts" `Quick test_of_list_dedup_sorts;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "inter and diff" `Quick test_inter_diff;
          Alcotest.test_case "subset and comparability" `Quick test_subset;
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
          Alcotest.test_case "canonical structural equality" `Quick
            test_structural_equality_is_canonical;
        ] );
      ( "iset-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_union_commutative;
            prop_union_assoc;
            prop_subset_antisym;
            prop_diff_inter_partition;
            prop_mem_add;
            prop_cardinal_monotone;
          ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "permutation valid" `Quick test_rng_permutation_valid;
        ] );
      ( "permutation",
        [
          Alcotest.test_case "inverse" `Quick test_permutation_inverse;
          Alcotest.test_case "compose" `Quick test_permutation_compose;
          Alcotest.test_case "enumerate" `Quick test_permutation_enumerate;
          Alcotest.test_case "invalid rejected" `Quick test_permutation_invalid;
        ] );
      ( "permutation-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_perm_inverse_roundtrip;
            prop_perm_inverse_involutive;
            prop_perm_compose_apply;
            prop_perm_inverse_antihomomorphism;
            prop_perm_compose_roundtrip;
          ] );
      ( "digraph",
        [
          Alcotest.test_case "sources" `Quick test_digraph_sources;
          Alcotest.test_case "cycle detection" `Quick test_digraph_cycle;
          Alcotest.test_case "sccs" `Quick test_digraph_sccs;
          Alcotest.test_case "self loop" `Quick test_digraph_self_loop;
          Alcotest.test_case "reachability" `Quick test_digraph_reachable;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "to_array" `Quick test_vec_to_array;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          QCheck_alcotest.to_alcotest prop_median_is_member;
          QCheck_alcotest.to_alcotest prop_summary_bounds;
        ] );
      ( "digraph-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_forward_edges_acyclic; prop_scc_condensation_sound ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
    ]
