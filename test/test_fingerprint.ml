(* Differential battery for the disk-spillable fingerprint engine
   (Explorer.explore_fp over Fingerprint_set).

   The contract under test: on every protocol, wiring and input
   assignment the fingerprint engine visits exactly the states the exact
   BFS visits (hash compaction may only ever lose states, and the
   birthday bound says how improbably) — so at these space sizes the
   state, transition and terminal counts must be *equal*, the reported
   omission bound must be < 1e-12, and all of that must survive a
   deliberately starved RAM budget that forces the set through its
   disk-spill path mid-exploration.  Planted bugs must surface as
   Fp_invariant_failed with a minimal counterexample that replays
   through Witness.Replay, and the multi-wiring sweep must agree with
   the exact sweep field by field.  A QCheck model test drives the bare
   Fingerprint_set against a Hashtbl oracle across random batch
   scripts under a 1 KiB budget, exercising in-batch dedup, RAM-tier
   probing and sorted-run merges together.

   Everything here is tiny (n <= 3, bounded) and runs under @mc-smoke;
   MC_LONG=1 widens the n=3 slice. *)

module Snap = Algorithms.Snapshot
module Fp = Modelcheck.Fingerprint_set

let long_mode = Sys.getenv_opt "MC_LONG" <> None

let qcheck_count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> int_of_string s
  | None -> if long_mode then 300 else 100

(* ------------------------------------------------------------------ *)
(* The differential harness, generic in the checkable protocol.       *)
(* ------------------------------------------------------------------ *)

module FpDiff (P : Modelcheck.Explorer.CHECKABLE) = struct
  module E = Modelcheck.Explorer.Make (P)
  module Replay = Modelcheck.Witness.Replay (P)

  type counts = { states : int; transitions : int; terminals : int }

  let exact ?invariant ?stop_expansion ?(reduction = false) ~cfg ~wiring
      ~inputs () =
    match
      E.explore ?invariant ?stop_expansion ~reduction ~cfg ~wiring ~inputs ()
    with
    | E.Explored sp ->
        {
          states = E.state_count sp;
          transitions = E.transition_count sp;
          terminals = List.length sp.E.terminal;
        }
    | E.Invariant_failed (_, v) ->
        Alcotest.failf "exact BFS: unexpected invariant failure: %s" v.E.message
    | E.State_limit k -> Alcotest.failf "exact BFS: state limit %d" k
    | E.Exhausted _ -> Alcotest.fail "exact BFS: unexpected exhaustion"

  let fp ?invariant ?stop_expansion ?(reduction = false) ?ram_budget_bytes
      ?batch_states ~cfg ~wiring ~inputs () =
    match
      E.explore_fp ?invariant ?stop_expansion ~reduction ?ram_budget_bytes
        ?batch_states ~cfg ~wiring ~inputs ()
    with
    | E.Fp_explored st -> st
    | E.Fp_invariant_failed { message; _ } ->
        Alcotest.failf "fp BFS: unexpected invariant failure: %s" message
    | E.Fp_state_limit k -> Alcotest.failf "fp BFS: state limit %d" k
    | E.Fp_exhausted _ -> Alcotest.fail "fp BFS: unexpected exhaustion"

  let check_counts ?(bound = 1e-12) name (ex : counts) (st : E.fp_stats) =
    Alcotest.(check int) (name ^ ": states") ex.states st.E.fp_states;
    Alcotest.(check int)
      (name ^ ": transitions")
      ex.transitions st.E.fp_transitions;
    Alcotest.(check int) (name ^ ": terminals") ex.terminals st.E.fp_terminals;
    Alcotest.(check bool)
      (Fmt.str "%s: omission bound %g < %g" name st.E.fp_bound bound)
      true
      (st.E.fp_bound < bound && st.E.fp_bound >= 0.0)

  (* One (wiring, inputs) cell: exact vs fingerprint at the default
     budget, at a starved 1 KiB budget with 64-state batches (forcing
     layer-by-layer spills on any space past ~100 states), and reduced
     vs reduced.  [bound] scales with the space: states^2 / 2^64 is
     ~7e-13 at 3k states but ~2e-11 at the 19k-state consensus cell. *)
  let cell ?invariant ?stop_expansion ?bound ~name ~cfg ~wiring ~inputs () =
    let ex = exact ?invariant ?stop_expansion ~cfg ~wiring ~inputs () in
    check_counts ?bound name ex
      (fp ?invariant ?stop_expansion ~cfg ~wiring ~inputs ());
    check_counts ?bound (name ^ " starved") ex
      (fp ?invariant ?stop_expansion ~ram_budget_bytes:1024 ~batch_states:64
         ~cfg ~wiring ~inputs ());
    let red =
      exact ?invariant ?stop_expansion ~reduction:true ~cfg ~wiring ~inputs ()
    in
    check_counts ?bound (name ^ " reduced") red
      (fp ?invariant ?stop_expansion ~reduction:true ~cfg ~wiring ~inputs ())
end

module SnapDiff = FpDiff (Modelcheck.Codecs.Snapshot)
module WsDiff = FpDiff (Modelcheck.Codecs.Write_scan)
module DcDiff = FpDiff (Modelcheck.Codecs.Double_collect)
module ConsDiff = FpDiff (Modelcheck.Codecs.Consensus)
module RenDiff = FpDiff (Modelcheck.Codecs.Renaming)

let wirings2 = Anonmem.Wiring.enumerate ~n:2 ~m:2 ~fix_first:true
let wirings3 = Anonmem.Wiring.enumerate ~n:3 ~m:3 ~fix_first:true

(* ------------------------------------------------------------------ *)
(* Protocol matrices, mirroring the engine-parity suite.              *)
(* ------------------------------------------------------------------ *)

let test_snapshot_n2_matrix () =
  let cfg = Snap.standard ~n:2 in
  List.iter
    (fun wiring ->
      List.iter
        (fun inputs ->
          SnapDiff.cell
            ~name:
              (Fmt.str "snapshot n=2 %a %a" Anonmem.Wiring.pp wiring
                 Fmt.(Dump.array int)
                 inputs)
            ~invariant:(Core.snapshot_invariant cfg inputs)
            ~cfg ~wiring ~inputs ())
        [ [| 1; 2 |]; [| 1; 1 |] ])
    wirings2

let snap3_stop level (st : SnapDiff.E.state) =
  Array.exists (fun l -> Snap.level_of_local l >= level) st.SnapDiff.E.locals

let test_snapshot_n3_bounded () =
  let cfg = Snap.standard ~n:3 in
  let level = if long_mode then 2 else 1 in
  let some_wirings =
    match wirings3 with
    | a :: b :: c :: _ -> if long_mode then [ a; b; c ] else [ a; b ]
    | _ -> assert false
  in
  List.iter
    (fun wiring ->
      SnapDiff.cell
        ~name:(Fmt.str "snapshot n=3 lvl<%d %a" level Anonmem.Wiring.pp wiring)
        ~invariant:(Core.snapshot_invariant cfg [| 1; 1; 1 |])
        ~stop_expansion:(snap3_stop level) ~cfg ~wiring ~inputs:[| 1; 1; 1 |] ())
    some_wirings

let test_write_scan_matrix () =
  (* Cyclic spaces: the non-terminating write-scan loop still has a
     finite visited set, so the fingerprint engine terminates with the
     exact counts (it just cannot say anything about wait-freedom). *)
  let cfg = Algorithms.Write_scan.cfg ~n:2 ~m:2 in
  List.iter
    (fun wiring ->
      WsDiff.cell
        ~name:(Fmt.str "write-scan %a" Anonmem.Wiring.pp wiring)
        ~cfg ~wiring ~inputs:[| 1; 2 |] ())
    wirings2

let test_double_collect_matrix () =
  let cfg = Algorithms.Double_collect.standard ~n:2 in
  List.iter
    (fun wiring ->
      DcDiff.cell
        ~name:(Fmt.str "double-collect %a" Anonmem.Wiring.pp wiring)
        ~cfg ~wiring ~inputs:[| 1; 1 |] ())
    wirings2

let test_consensus_bounded_matrix () =
  let cfg = Algorithms.Consensus.standard ~n:2 in
  let stop (st : ConsDiff.E.state) =
    Array.exists
      (fun (l : Algorithms.Consensus.local) -> l.Algorithms.Consensus.ts >= 2)
      st.ConsDiff.E.locals
  in
  List.iter
    (fun wiring ->
      ConsDiff.cell ~bound:1e-9
        ~name:(Fmt.str "consensus %a" Anonmem.Wiring.pp wiring)
        ~stop_expansion:stop ~cfg ~wiring ~inputs:[| 1; 2 |] ())
    wirings2

let test_renaming_matrix () =
  let cfg = Algorithms.Renaming.standard ~n:2 in
  List.iter
    (fun wiring ->
      RenDiff.cell
        ~name:(Fmt.str "renaming %a" Anonmem.Wiring.pp wiring)
        ~cfg ~wiring ~inputs:[| 1; 1 |] ())
    wirings2

(* ------------------------------------------------------------------ *)
(* Spill engagement and sweep-level agreement.                        *)
(* ------------------------------------------------------------------ *)

let test_starved_budget_spills () =
  (* The starved columns above only guarantee parity; this cell pins
     that the 1 KiB budget actually exercised the disk path on the
     2827-state identity space — runs written, bytes accounted, and the
     omission bound still tiny. *)
  let cfg = Snap.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let ex = SnapDiff.exact ~cfg ~wiring ~inputs () in
  let st =
    SnapDiff.fp ~ram_budget_bytes:1024 ~batch_states:64 ~cfg ~wiring ~inputs ()
  in
  SnapDiff.check_counts "starved identity" ex st;
  Alcotest.(check bool) "spill runs written" true (st.SnapDiff.E.fp_runs > 0);
  Alcotest.(check bool)
    "spill bytes accounted" true
    (st.SnapDiff.E.fp_bytes_spilled > 8 * st.SnapDiff.E.fp_runs)

let test_sweep_agreement () =
  (* check_all_wirings_fp vs check_all_wirings, field by field, on the
     full n=2 sweep (both input assignments).  The fp sweep proves
     safety only, so wait-freedom is the one column with no
     counterpart. *)
  let cfg = Snap.standard ~n:2 in
  let module E = SnapDiff.E in
  List.iter
    (fun inputs ->
      let invariant = Core.snapshot_invariant cfg inputs in
      let exact =
        match E.check_all_wirings ~invariant ~cfg ~inputs () with
        | Ok s -> s
        | Error e -> Alcotest.failf "exact sweep failed: %s" e
      in
      let fp =
        match E.check_all_wirings_fp ~invariant ~cfg ~inputs () with
        | Ok s -> s
        | Error e -> Alcotest.failf "fp sweep failed: %s" e
      in
      let module X = Modelcheck.Explorer in
      Alcotest.(check int) "wirings" exact.X.wirings_checked fp.X.fp_wirings;
      Alcotest.(check int) "total states" exact.X.total_states
        fp.X.fp_total_states;
      Alcotest.(check int) "max space" exact.X.max_space_states
        fp.X.fp_max_space_states;
      Alcotest.(check int) "total transitions" exact.X.total_transitions
        fp.X.fp_total_transitions;
      Alcotest.(check int) "terminals" exact.X.terminal_states
        fp.X.fp_terminal_states;
      Alcotest.(check bool)
        (Fmt.str "sweep union bound %g < 1e-12" fp.X.fp_omission_bound)
        true
        (fp.X.fp_omission_bound < 1e-12))
    [ [| 1; 2 |]; [| 1; 1 |] ]

let test_core_fp_parity () =
  (* The Core-level entry point: fp summary equals the exact engine's
     summary on the standard n=2 verification, pruned or not. *)
  List.iter
    (fun prune_with_invariant ->
      let exact =
        match Core.verify_snapshot_model ~n:2 ~prune_with_invariant () with
        | Ok s -> s
        | Error e -> Alcotest.fail e
      in
      let fp =
        match Core.verify_snapshot_model_fp ~n:2 ~prune_with_invariant () with
        | Ok s -> s
        | Error e -> Alcotest.fail e
      in
      let module X = Modelcheck.Explorer in
      Alcotest.(check int)
        (Fmt.str "core totals (prune=%b)" prune_with_invariant)
        exact.X.total_states fp.X.fp_total_states;
      Alcotest.(check int)
        (Fmt.str "core transitions (prune=%b)" prune_with_invariant)
        exact.X.total_transitions fp.X.fp_total_transitions;
      Alcotest.(check int)
        (Fmt.str "core pruned (prune=%b)" prune_with_invariant)
        exact.X.total_pruned fp.X.fp_total_pruned)
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Planted bugs: counterexamples out of a set with no parents.        *)
(* ------------------------------------------------------------------ *)

let no_output_invariant cfg (st : SnapDiff.E.state) =
  if Array.exists (fun l -> Snap.output cfg l <> None) st.SnapDiff.E.locals then
    Error "planted: someone terminated"
  else Ok ()

let test_planted_counterexample () =
  (* The fingerprint set stores no parent links; the engine rebuilds the
     witness with an exact re-exploration.  The trace must replay to a
     violating state and be minimal (equal to the exact BFS length) —
     under the default and the starved budget, reduced and not. *)
  let cfg = Snap.standard ~n:2 in
  let module E = SnapDiff.E in
  List.iter
    (fun wiring ->
      List.iter
        (fun (reduction, inputs, budget) ->
          let invariant = no_output_invariant cfg in
          let seq_len =
            match E.explore ~invariant ~reduction ~cfg ~wiring ~inputs () with
            | E.Invariant_failed (_, v) -> List.length v.E.trace
            | _ -> Alcotest.fail "exact BFS missed the planted bug"
          in
          match
            E.explore_fp ~invariant ~reduction ?ram_budget_bytes:budget
              ?batch_states:(Option.map (fun _ -> 64) budget)
              ~cfg ~wiring ~inputs ()
          with
          | E.Fp_invariant_failed { trace; message; _ } ->
              Alcotest.(check bool) "planted message" true
                (String.length message > 0);
              Alcotest.(check int)
                (Fmt.str "minimal length (reduction=%b)" reduction)
                seq_len (List.length trace);
              let final =
                SnapDiff.Replay.final ~cfg ~wiring ~inputs (List.map fst trace)
              in
              (match invariant final with
              | Error _ -> ()
              | Ok () ->
                  Alcotest.fail "fp trace replays to a non-violating state")
          | _ -> Alcotest.failf "fp engine missed the planted bug")
        [
          (false, [| 1; 2 |], None);
          (false, [| 1; 2 |], Some 1024);
          (true, [| 1; 1 |], None);
        ])
    wirings2

(* ------------------------------------------------------------------ *)
(* The bare set vs a Hashtbl oracle (QCheck).                         *)
(* ------------------------------------------------------------------ *)

let prop_fp_set_model =
  (* Random batch scripts against an exact oracle under a 1 KiB budget:
     add_batch must flag exactly the first global occurrence of each key
     (in-batch duplicates included), across RAM probes, mid-batch spills
     and sorted-run merges alike.  A false negative here is a hash
     collision between short ASCII keys — probability ~ 1e-16 per run. *)
  QCheck.Test.make ~name:"fingerprint set vs Hashtbl oracle (1 KiB budget)"
    ~count:qcheck_count
    QCheck.(
      list_of_size
        Gen.(1 -- 8)
        (list_of_size Gen.(0 -- 40) (string_of_size Gen.(1 -- 10))))
    (fun batches ->
      let t = Fp.create ~ram_budget_bytes:1024 () in
      let seen = Hashtbl.create 64 in
      let ok =
        List.for_all
          (fun batch ->
            let arr = Array.of_list batch in
            let fresh = Fp.add_batch t arr in
            let expect =
              Array.map
                (fun k ->
                  if Hashtbl.mem seen k then false
                  else begin
                    Hashtbl.add seen k ();
                    true
                  end)
                arr
            in
            fresh = expect)
          batches
      in
      let ok = ok && Fp.cardinal t = Hashtbl.length seen in
      Fp.close t;
      ok)

let test_fp_set_sections_roundtrip () =
  (* to_sections/of_sections must rebuild an equivalent set: same
     cardinal, same spill manifest, and every previously-added key is
     still a duplicate afterwards. *)
  let dir = Filename.temp_file "fpset" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let t = Fp.create ~ram_budget_bytes:1024 ~dir () in
  let keys = Array.init 500 (Printf.sprintf "key-%04d") in
  let fresh = Fp.add_batch t keys in
  Alcotest.(check bool) "all initially fresh" true
    (Array.for_all Fun.id fresh);
  Alcotest.(check bool) "budget forced a spill" true (Fp.spilled_runs t > 0);
  let sections = Fp.to_sections t in
  let t' = Fp.of_sections ~dir sections in
  Alcotest.(check int) "cardinal preserved" (Fp.cardinal t) (Fp.cardinal t');
  Alcotest.(check int) "runs preserved" (Fp.spilled_runs t)
    (Fp.spilled_runs t');
  let again = Fp.add_batch t' keys in
  Alcotest.(check bool) "no key re-admitted after reload" true
    (Array.for_all not again);
  Fp.close ~keep_runs:true t;
  Fp.close t';
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  (* Missing run files must fail the rebuild, not silently admit states. *)
  let dir2 = Filename.temp_file "fpset" "" in
  Sys.remove dir2;
  Unix.mkdir dir2 0o700;
  (match Fp.of_sections ~dir:dir2 sections with
  | exception Modelcheck.Checkpoint.Corrupt_checkpoint _ -> ()
  | _ -> Alcotest.fail "of_sections with missing runs must raise");
  try Unix.rmdir dir2 with Unix.Unix_error _ -> ()

let test_fingerprint_function () =
  let fp = Fp.fingerprint in
  Alcotest.(check bool) "deterministic" true (fp "abc" = fp "abc");
  Alcotest.(check bool) "distinct keys, distinct fps" true
    (fp "abc" <> fp "abd" && fp "" <> fp "\x00" && fp "a" <> fp "aa");
  (* The zero fingerprint is reserved as the empty-slot marker. *)
  let nonzero = ref true in
  for i = 0 to 9999 do
    if fp (Printf.sprintf "probe-%d" i) = 0L then nonzero := false
  done;
  Alcotest.(check bool) "no zero fingerprints" true !nonzero

let () =
  Alcotest.run "fingerprint"
    [
      ( "differential",
        [
          Alcotest.test_case "snapshot n=2, all wirings x inputs" `Quick
            test_snapshot_n2_matrix;
          Alcotest.test_case "snapshot n=3, level-bounded" `Quick
            test_snapshot_n3_bounded;
          Alcotest.test_case "write-scan (cyclic spaces)" `Quick
            test_write_scan_matrix;
          Alcotest.test_case "double-collect" `Quick test_double_collect_matrix;
          Alcotest.test_case "consensus, ts-bounded" `Quick
            test_consensus_bounded_matrix;
          Alcotest.test_case "renaming" `Quick test_renaming_matrix;
        ] );
      ( "spill",
        [
          Alcotest.test_case "starved budget engages the disk path" `Quick
            test_starved_budget_spills;
          Alcotest.test_case "sections round-trip" `Quick
            test_fp_set_sections_roundtrip;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "fp sweep = exact sweep, field by field" `Quick
            test_sweep_agreement;
          Alcotest.test_case "Core fp entry point parity" `Quick
            test_core_fp_parity;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "planted bug: minimal replayable witness" `Quick
            test_planted_counterexample;
        ] );
      ( "set",
        [
          QCheck_alcotest.to_alcotest prop_fp_set_model;
          Alcotest.test_case "fingerprint function basics" `Quick
            test_fingerprint_function;
        ] );
    ]
