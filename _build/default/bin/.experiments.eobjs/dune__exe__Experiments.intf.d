bin/experiments.mli:
