(** Protocols for the fully-anonymous shared-memory model.

    A protocol is the "same program" that every anonymous processor runs
    (Section 2 of the paper).  It is expressed as a first-order step
    machine: the local state determines the next shared-memory operation via
    {!S.next}, and pure transition functions describe the state after the
    operation completes.  This mirrors the atomicity grain of the paper's
    PlusCal specifications — each label encloses exactly one read or one
    write of a single register, with local computation folded in.

    Register indices appearing in operations are {e local} (private) indices
    in [0..M-1]: the simulator routes them through the processor's hidden
    wiring permutation, which is precisely what makes the memory anonymous.

    Local states must be first-order, canonical values (no closures, no
    non-canonical sets): the model checker compares and hashes them
    structurally. *)

(** A pending shared-memory instruction of a processor.  [Read i] and
    [Write (i, v)] address the processor's private register index [i]. *)
type 'v operation = Read of int | Write of int * 'v

module type S = sig
  type cfg
  (** Static parameters of an instance — at minimum the number of
      processors [N] (which processors know) and of registers [M]. *)

  type value
  (** Contents of a shared register. *)

  type input
  type output

  type local
  (** Private state of one processor.  Must be canonical: structural
      equality must coincide with semantic equality. *)

  val name : string

  val processors : cfg -> int
  (** [N], the number of processors, known to the program. *)

  val registers : cfg -> int
  (** [M], the number of shared registers. *)

  val register_init : cfg -> value
  (** The known default value every register initially holds. *)

  val init : cfg -> input -> local
  (** The designated initial local state.  Anonymity: this function is the
      same for all processors and never sees a processor identifier. *)

  val next : cfg -> local -> value operation option
  (** The pending operation, or [None] when the processor has terminated
      (takes no further steps). *)

  val halted : cfg -> local -> bool
  (** [halted cfg l] iff [next cfg l = None].  The execution loops poll
      this every step; implementations answer from a field test instead of
      constructing {!next}'s result, keeping the polling allocation-free. *)

  val apply_read : cfg -> local -> reg:int -> value -> local
  (** State after the pending [Read reg] returned [value]. *)

  val apply_write : cfg -> local -> local
  (** State after the pending [Write] took effect. *)

  val output : cfg -> local -> output option
  (** The processor's write-once output, if it has produced one.  For
      single-shot tasks this becomes non-[None] exactly when {!next}
      becomes [None]. *)

  val pp_value : cfg -> value Fmt.t
  val pp_local : cfg -> local Fmt.t
  val pp_output : cfg -> output Fmt.t
end
