(** The empirical feasibility map for the protocol portfolio.

    The Raynal–Taubenfeld symmetric mutex — and the desanonymization
    layer running above it — is deadlock-free in fully-anonymous memory
    exactly when the register count [m] is coprime with every possible
    contention level: [gcd (m, k) = 1] for all [k] in [2..n].  Below
    that, an equal split of the registers among [k] competitors is a
    reachable fair cycle.  Orthogonally there is a covering floor: at
    tiny [m] a pending stale write can obliterate a winner's claims
    ([m = 1] is coprime yet unsolvable — the Burns–Lynch argument; the
    weak-leader protocol loses uniqueness at [m = 1] the same way).

    This module is the pure half of the map: the coprimality predicate,
    the per-cell expectation, the (task, n, m) grids, and the JSON /
    text-table renderers.  The verdict-producing half lives in [Core]
    (it needs the model-checking engines, which sit above this library)
    and is threaded in as the [check] callback of {!run}. *)

open Repro_util

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(** [coprime_ok ~n ~m]: is [m] coprime with every contention level
    [2..n]?  The membership predicate of the paper-adjacent set [M(n)]. *)
let coprime_ok ~n ~m =
  let rec go k = k > n || (gcd m k = 1 && go (k + 1)) in
  m >= 1 && go 2

(** Why a cell is expected to fail, when it is. *)
type expectation =
  | Clean  (** the protocol's requirements hold: verification must pass *)
  | Noncoprime  (** [gcd (m, k) > 1] for some [k <= n]: expect deadlock *)
  | Below_floor
      (** [m] coprime but below the protocol's covering floor: expect a
          safety or liveness violation from a covering race *)

let pp_expectation ppf = function
  | Clean -> Fmt.string ppf "clean"
  | Noncoprime -> Fmt.string ppf "non-coprime"
  | Below_floor -> Fmt.string ppf "below-floor"

(** [expected ~floor ~coprime ~n ~m]: classification of cell [(n, m)] for
    a protocol requiring [m >= floor] and (when [coprime]) coprimality. *)
let expected ~floor ~coprime ~n ~m =
  if coprime && not (coprime_ok ~n ~m) then Noncoprime
  else if m < floor then Below_floor
  else Clean

(** What the checker reported for a cell. *)
type status =
  | Solved of { wirings : int; states : int }
  | Safety_broken of string
  | Deadlock of string
  | Limit of int

let pp_status ppf = function
  | Solved { wirings; states } ->
      Fmt.pf ppf "solved (%d wirings, %d states)" wirings states
  | Safety_broken msg -> Fmt.pf ppf "safety violation: %s" msg
  | Deadlock msg -> Fmt.pf ppf "deadlock: %s" msg
  | Limit k -> Fmt.pf ppf "resource limit at %d states" k

let status_keyword = function
  | Solved _ -> "solved"
  | Safety_broken _ -> "safety-violation"
  | Deadlock _ -> "deadlock"
  | Limit _ -> "resource-limit"

(** Does the observed status confirm the expectation?  Resource limits
    confirm nothing. *)
let confirms expectation status =
  match (expectation, status) with
  | Clean, Solved _ -> true
  | (Noncoprime | Below_floor), (Safety_broken _ | Deadlock _) -> true
  | _ -> false

type cell = {
  task : string;
  n : int;
  m : int;
  expectation : expectation;
  status : status;
}

type grid = {
  g_task : string;  (** checker key and display name *)
  g_floor : int;  (** minimum [m] the protocol documents as sufficient *)
  g_coprime : bool;  (** does the protocol require the coprimality set? *)
  g_cells : (int * int) list;  (** [(n, m)] cells to check, in order *)
}

let span ~n ms = List.map (fun m -> (n, m)) ms

(** The default portfolio grids.  [quick] restricts to [n = 2] (a smoke
    budget); the full map adds the [n = 3] rows that confirm the
    threshold moves with [n] ([m = 3] flips from clean to deadlocked). *)
let grids ?(quick = false) () =
  let mutex_cells =
    span ~n:2 [ 1; 2; 3; 4; 5; 6 ] @ if quick then [] else span ~n:3 [ 1; 2; 3; 4; 5 ]
  in
  (* Naming's n=3 row stops at the threshold flip (m = 3 safety-broken,
     m = 4 deadlocked): its first clean n=3 cell would be m = 5, whose
     full sweep only the packed mutex engine could afford — and naming's
     feasibility is *inherited* from the mutex it wraps (the ledger
     flood adds no register contention of its own; see naming.ml), so
     the mutex (3,5) cell already pins that boundary empirically. *)
  let naming_cells =
    span ~n:2 [ 2; 3; 4; 5 ] @ if quick then [] else span ~n:3 [ 3; 4 ]
  in
  let leader_cells =
    span ~n:2 [ 1; 2; 3; 4 ] @ if quick then [] else span ~n:3 [ 1; 2; 3; 4 ]
  in
  [
    { g_task = "mutex"; g_floor = 3; g_coprime = true; g_cells = mutex_cells };
    { g_task = "naming"; g_floor = 3; g_coprime = true; g_cells = naming_cells };
    { g_task = "leader"; g_floor = 2; g_coprime = false; g_cells = leader_cells };
  ]

(** Run the map: [check ~task ~n ~m] produces each cell's status (in
    [Core] this is the exhaustive model checker; tests substitute
    stubs).  [on_cell] fires after each cell for progress reporting. *)
let run ?on_cell ~check grids =
  List.concat_map
    (fun g ->
      List.map
        (fun (n, m) ->
          let expectation =
            expected ~floor:g.g_floor ~coprime:g.g_coprime ~n ~m
          in
          let status = check ~task:g.g_task ~n ~m in
          let cell = { task = g.g_task; n; m; expectation; status } in
          (match on_cell with Some f -> f cell | None -> ());
          cell)
        g.g_cells)
    grids

(** Every cell either confirmed its expectation or hit a resource
    limit — no surprises in the map. *)
let all_confirmed cells =
  List.for_all (fun c -> confirms c.expectation c.status) cells

(* --- rendering -------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** Hand-rolled JSON (the repo deliberately has no JSON dependency):
    one object per cell, stable key order, newline-separated — diffable
    and machine-readable. *)
let to_json cells =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"feasibility\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      let detail =
        match c.status with
        | Solved { wirings; states } ->
            Printf.sprintf "\"wirings\": %d, \"states\": %d" wirings states
        | Safety_broken msg | Deadlock msg ->
            Printf.sprintf "\"detail\": \"%s\"" (json_escape msg)
        | Limit k -> Printf.sprintf "\"limit\": %d" k
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"task\": \"%s\", \"n\": %d, \"m\": %d, \"coprime\": %b, \
            \"expected\": \"%s\", \"status\": \"%s\", \"confirmed\": %b, %s}"
           (json_escape c.task) c.n c.m
           (coprime_ok ~n:c.n ~m:c.m)
           (Fmt.str "%a" pp_expectation c.expectation)
           (status_keyword c.status)
           (confirms c.expectation c.status)
           detail))
    cells;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"all_confirmed\": %b\n}\n" (all_confirmed cells));
  Buffer.contents b

let to_table cells =
  let t =
    Text_table.create
      ~headers:[ "task"; "n"; "m"; "coprime"; "expected"; "verdict"; "ok" ]
  in
  List.iter
    (fun c ->
      Text_table.add_row t
        [
          c.task;
          string_of_int c.n;
          string_of_int c.m;
          (if coprime_ok ~n:c.n ~m:c.m then "yes" else "no");
          Fmt.str "%a" pp_expectation c.expectation;
          status_keyword c.status;
          (if confirms c.expectation c.status then "confirmed" else "!!");
        ])
    cells;
  t
