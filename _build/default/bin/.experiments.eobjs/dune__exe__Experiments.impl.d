bin/experiments.ml: Algorithms Analysis Anonmem Array Core Fmt Fun List Modelcheck Printf Repro_util Runtime_shm String Sys Unix
