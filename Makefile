.PHONY: build test bench fuzz-smoke fuzz-long clean

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The bounded fuzzing pass that runtest already includes (a few seconds).
fuzz-smoke:
	dune build @fuzz-smoke

# A serious fuzzing campaign over every target (several minutes).  The
# planted double-collect bug must be found; the paper's algorithms must
# stay clean.  Override SEED/ITERS to explore further.
SEED ?= 0
ITERS ?= 200000
fuzz-long:
	dune build bin/fuzz.exe
	dune exec --no-build bin/fuzz.exe -- --protocol double_collect \
	  --iterations $(ITERS) --seed $(SEED) --expect-bug
	dune exec --no-build bin/fuzz.exe -- --protocol snapshot \
	  --iterations $(ITERS) --seed $(SEED)
	dune exec --no-build bin/fuzz.exe -- --protocol renaming \
	  --iterations $(ITERS) --seed $(SEED)
	dune exec --no-build bin/fuzz.exe -- --protocol consensus \
	  --iterations $(ITERS) --seed $(SEED) --time-budget 120

clean:
	dune clean
