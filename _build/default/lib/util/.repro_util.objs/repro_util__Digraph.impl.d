lib/util/digraph.ml: Array Fun List
