(* Disk-spillable 64-bit fingerprint sets (see the .mli for the design).

   Fingerprints are true 64-bit FNV-1a values, but the hot paths never
   box an Int64: a fingerprint is carried as two nonnegative native ints
   (hi, lo), each below 2^32, and the multiply by the FNV prime
   p = 2^40 + 0x1b3 is done mod 2^64 in that split representation
   (every intermediate fits well below 2^62).  The RAM tier is one flat
   [Bytes] of 8-byte little-endian slots — no per-entry allocation — and
   spill runs are the same 8-byte words, sorted, behind a checksummed
   header. *)

let run_magic = "FPRUN001"

(* ------------------------------------------------------------------ *)
(* Split 64-bit FNV-1a                                                  *)
(* ------------------------------------------------------------------ *)

let basis_hi = 0xcbf29ce4
let basis_lo = 0x84222325
let mask32 = 0xffffffff

(* (hi:32, lo:32) * (2^40 + 0x1b3) mod 2^64:
   h * 2^40 ≡ lo * 2^40 (mod 2^64), whose high word is lo lsl 8;
   h * 0x1b3 splits into per-word products with one carry. *)
let[@inline] fnv_step hi lo byte =
  let lo = lo lxor byte in
  let lo_t = lo * 0x1b3 in
  let hi_t = (hi * 0x1b3) + ((lo lsl 8) land mask32) + (lo_t lsr 32) in
  (hi_t land mask32, lo_t land mask32)

let fp_of_key key =
  let hi = ref basis_hi and lo = ref basis_lo in
  for i = 0 to String.length key - 1 do
    let h, l = fnv_step !hi !lo (Char.code (String.unsafe_get key i)) in
    hi := h;
    lo := l
  done;
  (* (0, 0) is the tier's empty marker *)
  if !hi = 0 && !lo = 0 then (0, 1) else (!hi, !lo)

let fingerprint key =
  let hi, lo = fp_of_key key in
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let[@inline] fp_compare h1 l1 h2 l2 =
  if h1 <> h2 then compare h1 h2 else compare l1 l2

(* 8-byte LE slot accessors built from unboxed 16-bit reads. *)
let[@inline] read_lo b off =
  Bytes.get_uint16_le b off lor (Bytes.get_uint16_le b (off + 2) lsl 16)

let[@inline] read_hi b off =
  Bytes.get_uint16_le b (off + 4) lor (Bytes.get_uint16_le b (off + 6) lsl 16)

let[@inline] write_fp b off hi lo =
  Bytes.set_uint16_le b off (lo land 0xffff);
  Bytes.set_uint16_le b (off + 2) (lo lsr 16);
  Bytes.set_uint16_le b (off + 4) (hi land 0xffff);
  Bytes.set_uint16_le b (off + 6) (hi lsr 16)

(* ------------------------------------------------------------------ *)
(* The set                                                              *)
(* ------------------------------------------------------------------ *)

type run = { count : int; sum : int }

type t = {
  slots : Bytes.t;  (** capacity * 8 bytes, all-zero slot = empty *)
  mask : int;  (** capacity - 1 *)
  threshold : int;  (** spill when [resident] reaches this (3/4 load) *)
  dir : string;
  owns_dir : bool;
  mutable resident : int;
  mutable total : int;
  mutable runs : run array;  (** index i lives at [run_path t i] *)
  mutable spill_bytes : int;
}

let corrupt fmt =
  Printf.ksprintf (fun s -> raise (Checkpoint.Corrupt_checkpoint s)) fmt

let run_path t i = Filename.concat t.dir (Printf.sprintf "run-%d.fpr" i)

let capacity_of_budget budget =
  let want = max 64 (budget / 8) in
  (* largest power of two not exceeding [want] *)
  let rec go c = if c * 2 <= want then go (c * 2) else c in
  go 64

let make_dir = function
  | Some dir ->
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      (dir, false)
  | None ->
      let dir = Filename.temp_file "fpset" ".runs" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      (dir, true)

let create ?(ram_budget_bytes = 64 * 1024 * 1024) ?dir () =
  let cap = capacity_of_budget ram_budget_bytes in
  let dir, owns_dir = make_dir dir in
  {
    slots = Bytes.make (cap * 8) '\000';
    mask = cap - 1;
    threshold = cap * 3 / 4;
    dir;
    owns_dir;
    resident = 0;
    total = 0;
    runs = [||];
    spill_bytes = 0;
  }

let cardinal t = t.total
let resident t = t.resident
let capacity t = t.mask + 1
let spilled_runs t = Array.length t.runs
let spill_bytes t = t.spill_bytes
let omission_bound t =
  let n = float_of_int t.total in
  n *. n *. ldexp 1.0 (-64)

(* Linear probing; the tier never exceeds 3/4 load, so probes terminate. *)
let[@inline] slot_index t hi lo = (lo lxor hi) land t.mask

let tier_mem t hi lo =
  let rec go i =
    let off = i * 8 in
    let shi = read_hi t.slots off and slo = read_lo t.slots off in
    if shi = 0 && slo = 0 then false
    else if shi = hi && slo = lo then true
    else go ((i + 1) land t.mask)
  in
  go (slot_index t hi lo)

(* Only for fingerprints known absent; respects the load bound via the
   caller's spill discipline. *)
let tier_insert t hi lo =
  let rec go i =
    let off = i * 8 in
    if read_hi t.slots off = 0 && read_lo t.slots off = 0 then
      write_fp t.slots off hi lo
    else go ((i + 1) land t.mask)
  in
  go (slot_index t hi lo);
  t.resident <- t.resident + 1

(* ------------------------------------------------------------------ *)
(* Spilling and run files                                               *)
(* ------------------------------------------------------------------ *)

let write_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let read_u64 b off =
  let v = Bytes.get_int64_le b off in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    corrupt "Fingerprint_set: 64-bit field out of native range"
  else Int64.to_int v

(* Sort the resident fingerprints and write them as one immutable run
   (tmp + fsync + rename, like the checkpoint container), then clear the
   tier.  Run files are append-only as a set: once written, never
   modified, so the checkpoint manifest can pin them by checksum. *)
let spill t =
  if t.resident > 0 then begin
    let n = t.resident in
    let hi = Array.make n 0 and lo = Array.make n 0 in
    let j = ref 0 in
    for i = 0 to t.mask do
      let off = i * 8 in
      let shi = read_hi t.slots off and slo = read_lo t.slots off in
      if not (shi = 0 && slo = 0) then begin
        hi.(!j) <- shi;
        lo.(!j) <- slo;
        incr j
      end
    done;
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> fp_compare hi.(a) lo.(a) hi.(b) lo.(b)) order;
    let payload = Bytes.create (n * 8) in
    Array.iteri
      (fun k idx -> write_fp payload (k * 8) hi.(idx) lo.(idx))
      order;
    let sum = Checkpoint.checksum payload 0 (Bytes.length payload) in
    let img = Bytes.create (16 + (n * 8) + 8) in
    Bytes.blit_string run_magic 0 img 0 8;
    write_u64 img 8 n;
    Bytes.blit payload 0 img 16 (n * 8);
    write_u64 img (16 + (n * 8)) sum;
    let idx = Array.length t.runs in
    let path = run_path t idx in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_bytes oc img;
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc);
    close_out oc;
    Sys.rename tmp path;
    t.runs <- Array.append t.runs [| { count = n; sum } |];
    t.spill_bytes <- t.spill_bytes + Bytes.length img;
    Bytes.fill t.slots 0 (Bytes.length t.slots) '\000';
    t.resident <- 0
  end

(* Read one run fully, verifying framing and its trailer checksum (and,
   when a manifest pinned it, the manifest's count/checksum too). *)
let read_run t idx =
  let path = run_path t idx in
  let img =
    try
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      close_in ic;
      b
    with Sys_error e -> corrupt "Fingerprint_set: run %d unreadable: %s" idx e
  in
  if Bytes.length img < 24 then corrupt "Fingerprint_set: run %d truncated" idx;
  if not (String.equal (Bytes.sub_string img 0 8) run_magic) then
    corrupt "Fingerprint_set: run %d has a bad magic" idx;
  let count = read_u64 img 8 in
  if Bytes.length img <> 24 + (count * 8) then
    corrupt "Fingerprint_set: run %d length does not match its header" idx;
  let sum = Checkpoint.checksum img 16 (count * 8) in
  if sum <> read_u64 img (16 + (count * 8)) then
    corrupt "Fingerprint_set: run %d failed its checksum" idx;
  let r = t.runs.(idx) in
  if r.count <> count || r.sum <> sum then
    corrupt "Fingerprint_set: run %d does not match the manifest" idx;
  (img, count)

(* ------------------------------------------------------------------ *)
(* Batch membership + insertion                                         *)
(* ------------------------------------------------------------------ *)

let add_batch t keys =
  let n = Array.length keys in
  let res = Array.make n false in
  if n > 0 then begin
    let hi = Array.make n 0 and lo = Array.make n 0 in
    for i = 0 to n - 1 do
      let h, l = fp_of_key keys.(i) in
      hi.(i) <- h;
      lo.(i) <- l
    done;
    (* Representatives: sort by (fingerprint, arrival); the first of each
       equal-fingerprint group speaks for the batch, the rest are dups. *)
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        let c = fp_compare hi.(a) lo.(a) hi.(b) lo.(b) in
        if c <> 0 then c else compare a b)
      order;
    let cand = Array.make n 0 in
    let alive = Array.make n false in
    let nc = ref 0 in
    Array.iteri
      (fun k idx ->
        let first_of_group =
          k = 0
          ||
          let p = order.(k - 1) in
          fp_compare hi.(p) lo.(p) hi.(idx) lo.(idx) <> 0
        in
        if first_of_group && not (tier_mem t hi.(idx) lo.(idx)) then begin
          cand.(!nc) <- idx;
          alive.(!nc) <- true;
          incr nc
        end)
      order;
    (* Merge the sorted candidates against each sorted run: one
       sequential pass per run per batch. *)
    if !nc > 0 then
      for r = 0 to Array.length t.runs - 1 do
        let img, count = read_run t r in
        let j = ref 0 in
        (* skip candidates already found in an earlier run as we go *)
        for e = 0 to count - 1 do
          let off = 16 + (e * 8) in
          let rh = read_hi img off and rl = read_lo img off in
          let rec advance () =
            if !j < !nc then begin
              let c = cand.(!j) in
              let cmp = fp_compare hi.(c) lo.(c) rh rl in
              if cmp < 0 then begin
                incr j;
                advance ()
              end
              else if cmp = 0 then begin
                alive.(!j) <- false;
                incr j
              end
            end
          in
          advance ()
        done
      done;
    (* Insert the survivors (ascending fingerprint order — deterministic),
       spilling whenever the tier hits its load threshold. *)
    for k = 0 to !nc - 1 do
      if alive.(k) then begin
        let idx = cand.(k) in
        if t.resident >= t.threshold then spill t;
        tier_insert t hi.(idx) lo.(idx);
        t.total <- t.total + 1;
        res.(idx) <- true
      end
    done
  end;
  res

(* ------------------------------------------------------------------ *)
(* Checkpoint sections                                                  *)
(* ------------------------------------------------------------------ *)

let to_sections t =
  let ram = Bytes.create (t.resident * 8) in
  let j = ref 0 in
  for i = 0 to t.mask do
    let off = i * 8 in
    let shi = read_hi t.slots off and slo = read_lo t.slots off in
    if not (shi = 0 && slo = 0) then begin
      write_fp ram (!j * 8) shi slo;
      incr j
    end
  done;
  let manifest =
    Array.to_list t.runs
    |> List.concat_map (fun r -> [ r.count; r.sum ])
    |> Array.of_list
  in
  [
    ( "fp_meta",
      Checkpoint.bytes_of_ints
        [| t.mask + 1; t.resident; t.total; Array.length t.runs; t.spill_bytes |]
    );
    ("fp_ram", ram);
    ("fp_manifest", Checkpoint.bytes_of_ints manifest);
  ]

let of_sections ~dir sections =
  let meta = Checkpoint.ints_of_bytes (Checkpoint.find "fp_meta" sections) in
  if Array.length meta <> 5 then
    corrupt "Fingerprint_set: meta section of wrong length";
  let cap = meta.(0) in
  if cap < 64 || cap land (cap - 1) <> 0 then
    corrupt "Fingerprint_set: invalid tier capacity %d" cap;
  let manifest =
    Checkpoint.ints_of_bytes (Checkpoint.find "fp_manifest" sections)
  in
  if Array.length manifest mod 2 <> 0 then
    corrupt "Fingerprint_set: manifest section not count/checksum pairs";
  let nruns = Array.length manifest / 2 in
  if nruns <> meta.(3) then
    corrupt "Fingerprint_set: manifest run count disagrees with meta";
  let dir, owns_dir = make_dir (Some dir) in
  ignore owns_dir;
  let t =
    {
      slots = Bytes.make (cap * 8) '\000';
      mask = cap - 1;
      threshold = cap * 3 / 4;
      dir;
      owns_dir = false;
      resident = 0;
      total = meta.(2);
      runs =
        Array.init nruns (fun i ->
            { count = manifest.(2 * i); sum = manifest.((2 * i) + 1) });
      spill_bytes = meta.(4);
    }
  in
  let ram = Checkpoint.find "fp_ram" sections in
  if Bytes.length ram <> meta.(1) * 8 then
    corrupt "Fingerprint_set: RAM section does not match its meta count";
  if meta.(1) > t.threshold then
    corrupt "Fingerprint_set: RAM section exceeds the tier load bound";
  for i = 0 to meta.(1) - 1 do
    tier_insert t (read_hi ram (i * 8)) (read_lo ram (i * 8))
  done;
  (* Pin every run file now: a corrupted or missing spill must fail the
     resume, not silently admit states at the next probe. *)
  for r = 0 to nruns - 1 do
    ignore (read_run t r)
  done;
  t

let close ?(keep_runs = false) t =
  if not keep_runs then begin
    for i = 0 to Array.length t.runs - 1 do
      (try Sys.remove (run_path t i) with Sys_error _ -> ())
    done;
    if t.owns_dir then try Unix.rmdir t.dir with Unix.Unix_error _ -> ()
  end
