type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     small bounds used here, but take the high bits, which are better
     mixed. *)
  let x = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem x (Int64.of_int bound))

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n Fun.id in
  shuffle_in_place t a;
  a
