lib/tasks/snapshot_task.mli: Outcome Repro_util
