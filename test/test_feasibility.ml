(* The feasibility map's pure half (Analysis.Feasibility): the
   coprimality predicate against a brute-force oracle, the expectation
   assignment, the verdict/expectation confirmation matrix, and — via the
   Core verifiers — regressions pinning the first non-coprime cells and
   the m=1 covering cells to concrete violations. *)

module F = Analysis.Feasibility

(* --- coprimality predicate ----------------------------------------------- *)

let rec gcd_ref a b = if b = 0 then a else gcd_ref b (a mod b)

let brute_force_ok ~n ~m =
  m >= 1
  && List.for_all
       (fun k -> gcd_ref m k = 1)
       (List.init (max 0 (n - 1)) (fun i -> i + 2))

let prop_coprime_matches_brute_force =
  QCheck.Test.make ~count:2000
    ~name:"coprime_ok = brute-force gcd check (n<=8, m<=64)"
    QCheck.(pair (int_range 1 8) (int_range 1 64))
    (fun (n, m) -> F.coprime_ok ~n ~m = brute_force_ok ~n ~m)

let test_coprime_known_values () =
  (* The documented threshold cells, spelled out. *)
  List.iter
    (fun (n, m, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "coprime_ok n=%d m=%d" n m)
        want (F.coprime_ok ~n ~m))
    [
      (2, 1, true) (* coprime — the m=1 infeasibility is the covering
                      floor, not the gcd condition *);
      (2, 2, false);
      (2, 3, true);
      (2, 4, false);
      (2, 5, true);
      (2, 6, false);
      (3, 2, false);
      (3, 3, false);
      (3, 4, false);
      (3, 5, true);
      (3, 6, false);
      (3, 7, true);
      (4, 35, true) (* 35 = 5*7 is coprime with each of 2..4 *);
      (5, 35, false) (* ...but not with 5 *);
    ]

(* --- expectations and the confirmation matrix ---------------------------- *)

let test_expected_assignment () =
  let e = F.expected ~floor:3 ~coprime:true in
  (match e ~n:2 ~m:2 with
  | F.Noncoprime -> ()
  | _ -> Alcotest.fail "m=2, n=2: non-coprimality outranks the floor");
  (match e ~n:2 ~m:1 with
  | F.Below_floor -> ()
  | _ -> Alcotest.fail "m=1 must be below the floor");
  (match e ~n:2 ~m:4 with
  | F.Noncoprime -> ()
  | _ -> Alcotest.fail "m=4, n=2 must be non-coprime");
  match e ~n:2 ~m:3 with
  | F.Clean -> ()
  | _ -> Alcotest.fail "m=3, n=2 must be clean"

let test_confirmation_matrix () =
  let solved = F.Solved { wirings = 1; states = 1 } in
  let broken = F.Safety_broken "x" in
  let dead = F.Deadlock "y" in
  let limit = F.Limit 5 in
  List.iter
    (fun (exp_, st, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "confirms %s/%s"
           (Fmt.str "%a" F.pp_expectation exp_)
           (F.status_keyword st))
        want (F.confirms exp_ st))
    [
      (F.Clean, solved, true);
      (F.Clean, broken, false);
      (F.Clean, dead, false);
      (F.Clean, limit, false);
      (F.Noncoprime, solved, false);
      (F.Noncoprime, broken, true);
      (F.Noncoprime, dead, true);
      (F.Below_floor, broken, true);
      (F.Below_floor, dead, true);
      (F.Below_floor, solved, false);
      (F.Noncoprime, limit, false);
    ]

let test_json_shape () =
  let cells =
    [
      {
        F.task = "mutex";
        n = 2;
        m = 3;
        expectation = F.Clean;
        status = F.Solved { wirings = 6; states = 7354 };
      };
      {
        F.task = "mutex";
        n = 2;
        m = 2;
        expectation = F.Noncoprime;
        status = F.Deadlock "processors p1, p2 spin forever";
      };
    ]
  in
  let j = F.to_json cells in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "JSON contains %S" needle)
        true
        (let len = String.length needle in
         let rec scan i =
           i + len <= String.length j
           && (String.sub j i len = needle || scan (i + 1))
         in
         scan 0))
    [
      "\"task\": \"mutex\"";
      "\"expected\": \"clean\"";
      "\"status\": \"solved\"";
      "\"status\": \"deadlock\"";
      "\"all_confirmed\": true";
    ];
  Alcotest.(check bool) "both cells confirm" true (F.all_confirmed cells)

(* --- regressions: the first non-coprime cells are real violations -------- *)

(* Pin the *kind* of infeasibility at each boundary cell, not just "some
   violation": (2,2) deadlocks, (3,2)/(3,3) break exclusion outright,
   and m=1 breaks exclusion for the mutex and uniqueness for the leader
   even though 1 is coprime with everything. *)

let test_first_noncoprime_cells_pinned () =
  (match Core.verify_mutex ~n:2 ~m:2 () with
  | Core.Liveness_violation _ -> ()
  | v ->
      Alcotest.failf "mutex(2,2): want deadlock, got %s"
        (match v with
        | Core.Verified _ -> "verified"
        | Core.Safety_violation _ -> "safety violation"
        | Core.Resource_limit _ -> "limit"
        | Core.Liveness_violation _ | Core.Exhausted _ -> assert false));
  (match Core.verify_mutex ~n:3 ~m:2 () with
  | Core.Safety_violation _ -> ()
  | _ -> Alcotest.fail "mutex(3,2): want an exclusion break");
  match Core.verify_mutex ~n:3 ~m:3 () with
  | Core.Safety_violation _ -> ()
  | _ -> Alcotest.fail "mutex(3,3): want an exclusion break"

let test_covering_floor_cells_pinned () =
  (match Core.verify_mutex ~n:2 ~m:1 () with
  | Core.Safety_violation _ -> ()
  | _ -> Alcotest.fail "mutex(2,1): want an exclusion break despite gcd=1");
  match Core.verify_leader ~n:2 ~m:1 () with
  | Core.Safety_violation _ -> ()
  | _ -> Alcotest.fail "leader(2,1): want a two-leader break despite gcd=1"

(* The quick (n=2) map end to end: every cell must confirm the
   prediction.  This is the same sweep `anonsim feasibility --quick`
   runs, so the smoke alias and the library agree by construction. *)
let test_quick_map_confirms () =
  let cells = Core.feasibility_map ~quick:true ~reduction:true () in
  List.iter
    (fun (c : F.cell) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s n=%d m=%d confirms" c.F.task c.F.n c.F.m)
        true
        (F.confirms c.F.expectation c.F.status))
    cells;
  Alcotest.(check bool) "nonempty map" true (List.length cells >= 12)

let () =
  Alcotest.run "feasibility"
    [
      ( "coprimality",
        [
          QCheck_alcotest.to_alcotest prop_coprime_matches_brute_force;
          Alcotest.test_case "known threshold values" `Quick
            test_coprime_known_values;
        ] );
      ( "map-logic",
        [
          Alcotest.test_case "expectation assignment" `Quick
            test_expected_assignment;
          Alcotest.test_case "confirmation matrix" `Quick
            test_confirmation_matrix;
          Alcotest.test_case "JSON shape" `Quick test_json_shape;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "first non-coprime cells" `Quick
            test_first_noncoprime_cells_pinned;
          Alcotest.test_case "m=1 covering floor" `Quick
            test_covering_floor_cells_pinned;
          Alcotest.test_case "quick map confirms prediction" `Quick
            test_quick_map_confirms;
        ] );
    ]
