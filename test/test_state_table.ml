(* Oracle-differential suite for the arena-backed visited table.

   State_table is the visited set of every exploration engine; a bug in it
   silently corrupts model-checking verdicts rather than crashing, so the
   table is held against an executable specification: a stdlib
   [(string, int) Hashtbl] assigning dense ids in insertion order.  The
   QCheck properties drive both through the same random operation
   sequences — duplicate-heavy key streams, absent probes, widths from 1
   to 12 — starting from the smallest legal slot array so every run
   crosses several growth boundaries, and demand identical membership,
   identical dense ids, and exact [key_of_id]/[iter] round-trips.  On top
   of that, deterministic unit tests pin down the adversarial cases
   randomness is unlikely to hit: seeded same-bucket (and same-tag)
   collision chains, duplicate interns across a resize, and the
   structured width/range errors.  The Packed_vec companion gets the same
   treatment against a plain [int array] model. *)

module St = Modelcheck.State_table
module Pv = Modelcheck.State_table.Packed_vec

let qcheck_count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> int_of_string s
  | None -> 300

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* Keys over a 4-letter alphabet so random streams are duplicate-heavy:
   at width <= 3 the universe has at most 64 keys, forcing re-interns. *)
let gen_key w = QCheck.Gen.(string_size ~gen:(char_range 'a' 'd') (return w))

let gen_scenario =
  QCheck.Gen.(
    1 -- 12 >>= fun w ->
    list_size (0 -- 400) (gen_key w) >>= fun inserts ->
    list_size (0 -- 100) (gen_key w) >>= fun probes ->
    return (w, inserts, probes))

let scenario =
  QCheck.make
    ~print:(fun (w, inserts, probes) ->
      Printf.sprintf "width=%d inserts=[%s] probes=[%s]" w
        (String.concat ";" inserts)
        (String.concat ";" probes))
    gen_scenario

(* ------------------------------------------------------------------ *)
(* QCheck: differential against the Hashtbl oracle                     *)
(* ------------------------------------------------------------------ *)

let run_against_oracle (w, inserts, probes) =
  let t = St.create ~log2_slots:0 ~key_width:w () in
  let oracle : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun k ->
      let expected =
        match Hashtbl.find_opt oracle k with
        | Some id -> id
        | None ->
            let id = Hashtbl.length oracle in
            Hashtbl.add oracle k id;
            order := k :: !order;
            id
      in
      let got = St.intern t k in
      if got <> expected then
        QCheck.Test.fail_reportf "intern %S: id %d, oracle %d" k got expected)
    inserts;
  (t, oracle, List.rev !order, probes)

let prop_membership_and_ids =
  QCheck.Test.make ~name:"same membership and dense ids as the oracle"
    ~count:qcheck_count scenario (fun sc ->
      let t, oracle, _, probes = run_against_oracle sc in
      St.length t = Hashtbl.length oracle
      && List.for_all
           (fun k ->
             St.find t k = Hashtbl.find_opt oracle k
             && St.mem t k = Hashtbl.mem oracle k)
           probes)

let prop_key_of_id_round_trip =
  QCheck.Test.make ~name:"key_of_id inverts every oracle id"
    ~count:qcheck_count scenario (fun sc ->
      let t, oracle, _, _ = run_against_oracle sc in
      Hashtbl.fold
        (fun k id acc -> acc && String.equal (St.key_of_id t id) k)
        oracle true)

let prop_iter_is_insertion_order =
  QCheck.Test.make ~name:"iter yields keys in insertion order"
    ~count:qcheck_count scenario (fun sc ->
      let t, _, order, _ = run_against_oracle sc in
      let seen = ref [] in
      St.iter (fun id k -> seen := (id, k) :: !seen) t;
      List.rev !seen = List.mapi (fun i k -> (i, k)) order)

let prop_load_factor =
  QCheck.Test.make ~name:"growth keeps load at or below 3/4"
    ~count:qcheck_count scenario (fun sc ->
      let t, _, _, _ = run_against_oracle sc in
      let cap = St.capacity t in
      cap land (cap - 1) = 0 && 4 * St.length t <= 3 * cap)

(* ------------------------------------------------------------------ *)
(* Deterministic adversarial cases                                     *)
(* ------------------------------------------------------------------ *)

(* Enumerate distinct width-8 keys whose hash lands in [bucket] of a
   [cap]-slot table — the worst case for linear probing, and (since tags
   are only 8 bits) a stream guaranteed to contain same-tag collisions
   once it exceeds 256 keys' birthday bound. *)
let colliding_keys ~cap ~bucket count =
  let buf = Bytes.create 8 in
  let rec go i acc found =
    if found = count then List.rev acc
    else begin
      Bytes.set_int64_le buf 0 (Int64.of_int i);
      let k = Bytes.to_string buf in
      if St.hash k land (cap - 1) = bucket then go (i + 1) (k :: acc) (found + 1)
      else go (i + 1) acc found
    end
  in
  go 0 [] 0

let test_seeded_collisions () =
  let cap = 8 in
  let keys = colliding_keys ~cap ~bucket:3 40 in
  Alcotest.(check int) "40 colliding keys found" 40 (List.length keys);
  let t = St.create ~log2_slots:3 ~key_width:8 () in
  List.iteri
    (fun i k -> Alcotest.(check int) "dense id" i (St.intern t k))
    keys;
  List.iteri
    (fun i k ->
      Alcotest.(check (option int)) "find after collisions" (Some i) (St.find t k);
      Alcotest.(check string) "key_of_id after collisions" k (St.key_of_id t i))
    keys;
  (* A colliding key that was never inserted must still miss. *)
  let absent = List.nth (colliding_keys ~cap ~bucket:3 41) 40 in
  Alcotest.(check (option int)) "absent collider misses" None (St.find t absent)

let test_same_tag_collisions () =
  (* Force full hash-tag agreement: keys sharing both the bucket of the
     initial 8-slot table and the 8-bit stored tag can only be told apart
     by the arena comparison. *)
  let keys = colliding_keys ~cap:8 ~bucket:0 3000 in
  let tag k = (St.hash k lsr 55) land 0xff in
  let by_tag = Hashtbl.create 256 in
  List.iter
    (fun k ->
      Hashtbl.replace by_tag (tag k) (k :: Option.value ~default:[] (Hashtbl.find_opt by_tag (tag k))))
    keys;
  let twins =
    Hashtbl.fold
      (fun _ ks acc ->
        match ks with a :: b :: _ -> (a, b) :: acc | _ -> acc)
      by_tag []
  in
  Alcotest.(check bool) "found same-bucket same-tag twins" true (twins <> []);
  let t = St.create ~log2_slots:3 ~key_width:8 () in
  List.iter
    (fun (a, b) ->
      let ia = St.intern t a and ib = St.intern t b in
      Alcotest.(check bool) "twins get distinct ids" true (ia <> ib);
      Alcotest.(check (option int)) "twin a found" (Some ia) (St.find t a);
      Alcotest.(check (option int)) "twin b found" (Some ib) (St.find t b))
    twins

let test_duplicate_inserts_across_growth () =
  let t = St.create ~log2_slots:0 ~key_width:4 () in
  let key i = Printf.sprintf "%04d" i in
  (* First pass interns 5000 keys (many resizes from the 8-slot floor);
     second pass must return the same ids without growing the count. *)
  for i = 0 to 4999 do
    Alcotest.(check int) "first intern" i (St.intern t (key i))
  done;
  for i = 0 to 4999 do
    Alcotest.(check int) "re-intern" i (St.intern t (key i))
  done;
  Alcotest.(check int) "length unchanged by duplicates" 5000 (St.length t);
  Alcotest.(check string) "round trip" (key 1234) (St.key_of_id t 1234)

let test_structured_errors () =
  let t = St.create ~key_width:3 () in
  ignore (St.intern t "abc");
  let wrong_width f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "width mismatch accepted"
  in
  wrong_width (fun () -> St.intern t "ab");
  wrong_width (fun () -> St.find t "abcd" |> Option.is_some);
  wrong_width (fun () -> St.mem t "");
  (match St.key_of_id t 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range id accepted");
  (match St.key_of_id t (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative id accepted");
  Alcotest.(check int) "table undamaged" 1 (St.length t);
  Alcotest.(check (option int)) "original key intact" (Some 0) (St.find t "abc")

let test_words_grows () =
  let t = St.create ~key_width:8 () in
  let w0 = St.words t in
  for i = 0 to 9999 do
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int i);
    ignore (St.intern t (Bytes.to_string b))
  done;
  Alcotest.(check bool) "words reflects arena growth" true (St.words t > w0)

(* ------------------------------------------------------------------ *)
(* Packed_vec vs int-array model                                       *)
(* ------------------------------------------------------------------ *)

let gen_pv_scenario =
  QCheck.Gen.(
    1 -- 7 >>= fun stride ->
    let bound = (1 lsl (8 * min stride 7)) - 1 in
    let bound = min bound max_int in
    list_size (0 -- 300) (0 -- bound) >>= fun pushes ->
    list_size (0 -- 50) (pair (0 -- 299) (0 -- bound)) >>= fun sets ->
    return (stride, pushes, sets))

let pv_scenario =
  QCheck.make
    ~print:(fun (stride, pushes, sets) ->
      Printf.sprintf "stride=%d pushes=%d sets=%d" stride (List.length pushes)
        (List.length sets))
    gen_pv_scenario

let prop_packed_vec_model =
  QCheck.Test.make ~name:"Packed_vec matches the int-array model"
    ~count:qcheck_count pv_scenario (fun (stride, pushes, sets) ->
      let v = Pv.create ~capacity:1 ~stride () in
      let model = Array.make (List.length pushes) 0 in
      List.iteri
        (fun i x ->
          model.(i) <- x;
          if Pv.push v x <> i then QCheck.Test.fail_report "push index")
        pushes;
      List.iter
        (fun (i, x) ->
          if i < Pv.length v then begin
            model.(i) <- x;
            Pv.set v i x
          end)
        sets;
      Pv.length v = Array.length model
      && Array.for_all Fun.id (Array.mapi (fun i x -> Pv.get v i = x) model))

let test_packed_vec_range_errors () =
  let v = Pv.create ~stride:2 () in
  ignore (Pv.push v 65535);
  (match Pv.push v 65536 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overflow push accepted");
  (match Pv.push v (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative push accepted");
  Alcotest.(check int) "length unchanged by rejected pushes" 1 (Pv.length v);
  Alcotest.(check int) "stored value intact" 65535 (Pv.get v 0);
  (match Pv.set v 0 70000 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overflow set accepted");
  (match Pv.get v 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range get accepted");
  (match Pv.create ~stride:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stride 0 accepted");
  (match Pv.create ~stride:8 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stride 8 accepted")

let test_packed_vec_five_byte_words () =
  (* The explorers pack (id lsl 4) lor pid into stride-5 words; check the
     extremes survive the byte round-trip. *)
  let v = Pv.create ~stride:5 () in
  let top = (1 lsl 40) - 1 in
  ignore (Pv.push v 0);
  ignore (Pv.push v top);
  ignore (Pv.push v ((123456789 lsl 4) lor 15));
  Alcotest.(check int) "zero" 0 (Pv.get v 0);
  Alcotest.(check int) "max 5-byte word" top (Pv.get v 1);
  Alcotest.(check int) "packed edge word" ((123456789 lsl 4) lor 15) (Pv.get v 2)

let () =
  Alcotest.run "state_table"
    [
      ( "oracle-differential",
        [
          QCheck_alcotest.to_alcotest prop_membership_and_ids;
          QCheck_alcotest.to_alcotest prop_key_of_id_round_trip;
          QCheck_alcotest.to_alcotest prop_iter_is_insertion_order;
          QCheck_alcotest.to_alcotest prop_load_factor;
        ] );
      ( "collisions",
        [
          Alcotest.test_case "seeded same-bucket chain" `Quick
            test_seeded_collisions;
          Alcotest.test_case "same-bucket same-tag twins" `Quick
            test_same_tag_collisions;
          Alcotest.test_case "duplicate inserts across growth" `Quick
            test_duplicate_inserts_across_growth;
        ] );
      ( "errors",
        [
          Alcotest.test_case "structured width/id errors" `Quick
            test_structured_errors;
          Alcotest.test_case "words tracks growth" `Quick test_words_grows;
        ] );
      ( "packed-vec",
        [
          QCheck_alcotest.to_alcotest prop_packed_vec_model;
          Alcotest.test_case "range errors" `Quick test_packed_vec_range_errors;
          Alcotest.test_case "five-byte explorer words" `Quick
            test_packed_vec_five_byte_words;
        ] );
    ]
