examples/multicore_snapshot.ml: Array Printf Repro_util Runtime_shm
