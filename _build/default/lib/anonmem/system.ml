(** Operational semantics of the fully-anonymous model: system states and
    atomic steps for a given protocol.

    A system state records the contents of the [M] physical registers, who
    last wrote each of them (bookkeeping used by the analyses, invisible to
    processors), each processor's local state, and the fixed hidden wiring.
    A step executes the pending operation of one processor, routing its
    private register index through the wiring — reads and writes are atomic,
    one register at a time, exactly as in Section 2 of the paper. *)

module Make (P : Protocol.S) = struct
  type state = {
    cfg : P.cfg;
    wiring : Wiring.t;
    registers : P.value array;  (** indexed by physical register *)
    last_writer : int option array;
        (** physical register -> last writing processor; [None] = initial
            value still in place.  Ghost state for the analyses. *)
    locals : P.local array;
  }

  type event =
    | Read_ev of {
        p : int;
        local_reg : int;
        phys_reg : int;
        value : P.value;
        writer : int option;  (** whom [p] "reads from" (Section 2) *)
      }
    | Write_ev of {
        p : int;
        local_reg : int;
        phys_reg : int;
        value : P.value;
        previous : P.value;
        overwrote : int option;  (** previous last writer, if any *)
      }

  let init ~cfg ~wiring ~inputs =
    let n = P.processors cfg and m = P.registers cfg in
    if Wiring.processors wiring <> n then
      invalid_arg "System.init: wiring has wrong number of processors";
    if Wiring.registers wiring <> m then
      invalid_arg "System.init: wiring has wrong number of registers";
    if Array.length inputs <> n then
      invalid_arg "System.init: wrong number of inputs";
    {
      cfg;
      wiring;
      registers = Array.make m (P.register_init cfg);
      last_writer = Array.make m None;
      locals = Array.map (P.init cfg) inputs;
    }

  let processors s = P.processors s.cfg
  let is_halted s p = P.next s.cfg s.locals.(p) = None

  let enabled s =
    List.filter (fun p -> not (is_halted s p)) (List.init (processors s) Fun.id)

  let all_halted s = enabled s = []
  let output s p = P.output s.cfg s.locals.(p)
  let outputs s = Array.init (processors s) (output s)

  let event_of s p =
    match P.next s.cfg s.locals.(p) with
    | None -> None
    | Some (Protocol.Read i) ->
        let r = Wiring.phys s.wiring ~p i in
        Some
          (Read_ev
             {
               p;
               local_reg = i;
               phys_reg = r;
               value = s.registers.(r);
               writer = s.last_writer.(r);
             })
    | Some (Protocol.Write (i, v)) ->
        let r = Wiring.phys s.wiring ~p i in
        Some
          (Write_ev
             {
               p;
               local_reg = i;
               phys_reg = r;
               value = v;
               previous = s.registers.(r);
               overwrote = s.last_writer.(r);
             })

  (* In-place transition; callers owning [s] exclusively use this for
     speed. *)
  let step_in_place s p =
    match event_of s p with
    | None -> invalid_arg "System.step: processor has terminated"
    | Some (Read_ev { local_reg; phys_reg; value; _ } as ev) ->
        s.locals.(p) <- P.apply_read s.cfg s.locals.(p) ~reg:local_reg value;
        let _ = phys_reg in
        ev
    | Some (Write_ev { phys_reg; value; _ } as ev) ->
        s.registers.(phys_reg) <- value;
        s.last_writer.(phys_reg) <- Some p;
        s.locals.(p) <- P.apply_write s.cfg s.locals.(p);
        ev

  let copy s =
    {
      s with
      registers = Array.copy s.registers;
      last_writer = Array.copy s.last_writer;
      locals = Array.copy s.locals;
    }

  (* Pure transition: never mutates [s]. *)
  let step s p =
    let s' = copy s in
    let ev = step_in_place s' p in
    (s', ev)

  type stop_reason = All_halted | Scheduler_done | Max_steps

  (** Drive [state] under [sched] for at most [max_steps] steps, mutating it
      in place.  [on_event] observes each step (time is the 0-based step
      index).  Returns why the run stopped and the number of steps taken. *)
  let run ?(max_steps = 100_000) ~sched ?on_event state =
    let rec go time =
      if time >= max_steps then (Max_steps, time)
      else
        match enabled state with
        | [] -> (All_halted, time)
        | en -> (
            match Scheduler.pick sched ~time ~enabled:en with
            | None -> (Scheduler_done, time)
            | Some p ->
                if not (List.mem p en) then
                  invalid_arg "System.run: scheduler picked a halted processor";
                let ev = step_in_place state p in
                (match on_event with Some f -> f ~time ev | None -> ());
                go (time + 1))
    in
    go 0

  let pp_event cfg ppf = function
    | Read_ev { p; local_reg; phys_reg; value; writer } ->
        Fmt.pf ppf "p%d reads r%d (own #%d) = %a%a" (p + 1) (phys_reg + 1)
          (local_reg + 1) (P.pp_value cfg) value
          (fun ppf -> function
            | None -> ()
            | Some q -> Fmt.pf ppf " [from p%d]" (q + 1))
          writer
    | Write_ev { p; local_reg; phys_reg; value; overwrote; _ } ->
        Fmt.pf ppf "p%d writes r%d (own #%d) := %a%a" (p + 1) (phys_reg + 1)
          (local_reg + 1) (P.pp_value cfg) value
          (fun ppf -> function
            | None -> ()
            | Some q -> Fmt.pf ppf " [overwrites p%d]" (q + 1))
          overwrote

  let pp_state ppf s =
    let m = Array.length s.registers in
    Fmt.pf ppf "@[<v>";
    for r = 0 to m - 1 do
      Fmt.pf ppf "r%d = %a%a@," (r + 1) (P.pp_value s.cfg) s.registers.(r)
        (fun ppf -> function
          | None -> ()
          | Some q -> Fmt.pf ppf "  (last writer p%d)" (q + 1))
        s.last_writer.(r)
    done;
    Array.iteri
      (fun p l -> Fmt.pf ppf "p%d: %a@," (p + 1) (P.pp_local s.cfg) l)
      s.locals;
    Fmt.pf ppf "@]"
end
