(** Small descriptive statistics over integer samples — medians and
    percentiles for the step-count distributions reported by the
    experiment harness and benchmarks. *)

type summary = {
  count : int;
  min : int;
  max : int;
  mean : float;
  median : int;
  p90 : int;
  stddev : float;
}

val summarize : int list -> summary option
(** [None] on the empty list. *)

val median : int list -> int option

val percentile : float -> int list -> int option
(** [percentile q xs] for [q] in [0..1], nearest-rank method. *)

val pp_summary : summary Fmt.t
(** Renders as [n=… min=… med=… p90=… max=… mean=…]. *)
