lib/algorithms/consensus.ml: Fmt Int List Long_lived_snapshot Repro_util Sorted_set
