(** Figure 1: the plain write–scan loop.

    Each processor holds a view (initially the singleton of its input) and
    forever alternates between writing its view to the next register of a
    private fair cyclic order and scanning all registers, adding everything
    it reads to its view.  No processor ever terminates; the interest of
    this protocol is the structure of the views it can sustain forever —
    the eventual-pattern question of Section 4, answered by
    {!Analysis.Stable_views}. *)

open Repro_util

type cfg = { n : int; m : int }

let cfg ~n ~m =
  if n < 1 || m < 1 then invalid_arg "Write_scan.cfg";
  { n; m }

type value = Iset.t
type input = int
type output = |
(** This protocol produces no outputs; the type is uninhabited. *)

(* Reads are folded into the view immediately rather than accumulated until
   the scan ends; the two are observably equivalent (the view is only
   externally visible through writes, and a processor never writes
   mid-scan) and the smaller local state keeps model checking cheap. *)
type scan = { pos : int }
type phase = Writing | Scanning of scan
type local = { view : Iset.t; next_write : int; phase : phase }

let name = "write-scan"
let processors cfg = cfg.n
let registers cfg = cfg.m
let register_init _ = Iset.empty
let init _ input = { view = Iset.singleton input; next_write = 0; phase = Writing }

let halted _ _ = false

let next _cfg l =
  match l.phase with
  | Writing -> Some (Anonmem.Protocol.Write (l.next_write, l.view))
  | Scanning { pos; _ } -> Some (Anonmem.Protocol.Read pos)

let apply_write cfg l =
  match l.phase with
  | Scanning _ -> invalid_arg "Write_scan.apply_write: not writing"
  | Writing ->
      {
        l with
        next_write = (l.next_write + 1) mod cfg.m;
        phase = Scanning { pos = 0 };
      }

let apply_read cfg l ~reg v =
  match l.phase with
  | Writing -> invalid_arg "Write_scan.apply_read: not scanning"
  | Scanning s ->
      if reg <> s.pos then invalid_arg "Write_scan.apply_read: wrong register";
      let view = Iset.union l.view v in
      if s.pos + 1 < cfg.m then
        { l with view; phase = Scanning { pos = s.pos + 1 } }
      else { l with view; phase = Writing }

let output _ _ = None
let view_of_local l = l.view
let at_round_boundary l = l.phase = Writing
let pp_value _ = Iset.pp_set

let pp_local _ ppf l =
  let pp_phase ppf = function
    | Writing -> Fmt.pf ppf "write#%d" l.next_write
    | Scanning { pos; _ } -> Fmt.pf ppf "scan@%d" pos
  in
  Fmt.pf ppf "{view=%a %a}" Iset.pp_set l.view pp_phase l.phase

let pp_output _ _ppf (o : output) = match o with _ -> .
