lib/modelcheck/snapshot3_nd.ml: Anonmem Array List Repro_util Seq Snapshot3 Vec
