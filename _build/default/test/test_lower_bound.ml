(* The Section-2.1 covering construction: with N processors and N-1
   registers, the adversary erases the solo processor's information and the
   combined outputs violate the snapshot task. *)

open Repro_util
module LB = Analysis.Lower_bound

let iset = Alcotest.testable (Fmt.of_to_string Iset.to_string) Iset.equal

let test_construction_for_sizes () =
  List.iter
    (fun n ->
      let r = LB.run ~n () in
      Alcotest.check iset
        (Printf.sprintf "n=%d: p outputs its own singleton" n)
        (Iset.of_list [ 1 ]) r.LB.p_output;
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: covering erased p" n)
        true (LB.p_erased r);
      Alcotest.(check int)
        (Printf.sprintf "n=%d: all of Q terminates" n)
        (n - 1)
        (List.length r.LB.q_outputs);
      List.iter
        (fun (_, o) ->
          Alcotest.(check bool) "Q outputs exclude p's input" true
            (not (Iset.mem 1 o));
          Alcotest.(check bool) "incomparable with p's output" false
            (Iset.comparable (Iset.of_list [ 1 ]) o))
        r.LB.q_outputs)
    [ 2; 3; 4; 5; 6 ]

let test_violation_detected_by_task_checker () =
  let r = LB.run ~n:4 () in
  Alcotest.(check bool) "violation message mentions incomparability" true
    (String.length r.LB.violation > 0)

let test_memory_after_covering_holds_only_q () =
  let r = LB.run ~n:5 () in
  Alcotest.(check int) "one register per member of Q" 4
    (List.length r.LB.memory_after_covering);
  List.iter
    (fun v ->
      Alcotest.(check int) "each register holds a singleton" 1 (Iset.cardinal v);
      Alcotest.(check bool) "a Q input" true
        (Iset.subset v (Iset.of_list [ 2; 3; 4; 5 ])))
    r.LB.memory_after_covering;
  (* distinct registers covered by distinct processors *)
  let all = Iset.union_all r.LB.memory_after_covering in
  Alcotest.check iset "all of Q's inputs present" (Iset.of_list [ 2; 3; 4; 5 ]) all

let test_q_outputs_are_internally_consistent () =
  (* Q alone behaves like a correct snapshot among themselves *)
  let r = LB.run ~n:5 () in
  List.iter
    (fun (_, o1) ->
      List.iter
        (fun (_, o2) ->
          Alcotest.(check bool) "Q outputs comparable" true (Iset.comparable o1 o2))
        r.LB.q_outputs)
    r.LB.q_outputs

let test_custom_inputs () =
  let r = LB.run ~inputs:(Some [| 10; 20; 30 |]) ~n:3 () in
  Alcotest.check iset "p output is its custom input" (Iset.of_list [ 10 ])
    r.LB.p_output

let test_rejects_tiny_n () =
  Alcotest.check_raises "n=1 rejected"
    (Invalid_argument "Lower_bound.run: need at least 2 processors") (fun () ->
      ignore (LB.run ~n:1 ()))

let test_solo_steps_grow_with_n () =
  let steps n = (LB.run ~n ()).LB.p_solo_steps in
  Alcotest.(check bool) "solo termination cost grows" true
    (steps 3 < steps 5 && steps 5 < steps 7)

let () =
  Alcotest.run "lower_bound"
    [
      ( "section-2.1",
        [
          Alcotest.test_case "construction n=2..6" `Quick test_construction_for_sizes;
          Alcotest.test_case "task checker flags violation" `Quick
            test_violation_detected_by_task_checker;
          Alcotest.test_case "memory after covering" `Quick
            test_memory_after_covering_holds_only_q;
          Alcotest.test_case "Q internally consistent" `Quick
            test_q_outputs_are_internally_consistent;
          Alcotest.test_case "custom inputs" `Quick test_custom_inputs;
          Alcotest.test_case "n=1 rejected" `Quick test_rejects_tiny_n;
          Alcotest.test_case "solo cost grows with n" `Quick
            test_solo_steps_grow_with_n;
        ] );
    ]
