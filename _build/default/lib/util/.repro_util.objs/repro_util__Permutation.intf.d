lib/util/permutation.mli: Fmt Rng
