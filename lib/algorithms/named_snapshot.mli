(** Baseline: a collect-based snapshot for {e named} memory, in the style
    of the single-writer constructions (Afek et al. 1993) that the paper
    contrasts with.

    Processors are de-anonymized through their inputs (a unique identity
    in [1..N]) and claim register [id - 1] as a single-writer register —
    exactly the pre-agreed naming the fully-anonymous model forbids.
    After announcing its identity once, a processor repeatedly collects
    all registers until two consecutive collects agree and outputs the
    identities seen.

    Under the identity wiring this is a valid snapshot (every processor
    writes once, so a repeated collect certifies quiescence); under
    anonymous (random) wirings two processors may share a physical
    register and completeness breaks — the test-suite quantifies how
    often.  Implements {!Anonmem.Protocol.S}. *)

open Repro_util

type cfg = { n : int }

val cfg : n:int -> cfg

type slot = { id : int; seq : int }
type value = slot option
type input = int
type output = Iset.t

type phase =
  | Announce
  | Collecting of { pos : int; acc : value list }
  | Compare of { last : value list }

type local = {
  id : int;
  prev : value list option;
  phase : phase;
  result : Iset.t option;
}

val name : string
val processors : cfg -> int
val registers : cfg -> int
val register_init : cfg -> value
val init : cfg -> input -> local
val halted : cfg -> local -> bool
val next : cfg -> local -> value Anonmem.Protocol.operation option
val apply_read : cfg -> local -> reg:int -> value -> local
val apply_write : cfg -> local -> local
val output : cfg -> local -> output option

val flat :
  cfg ->
  phys:int array ->
  inputs:input array ->
  registers:value array ->
  locals:local array ->
  value Anonmem.Protocol.flat option
val pp_value : cfg -> value Fmt.t
val pp_local : cfg -> local Fmt.t
val pp_output : cfg -> output Fmt.t
