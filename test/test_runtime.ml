(* Tests of the real-parallelism runtime: the same protocols on OCaml 5
   domains with Atomic registers.  These validate the task properties of
   outputs produced under genuine hardware interleavings. *)

open Repro_util

let test_parallel_snapshot_valid () =
  for seed = 0 to 9 do
    let inputs = [| 1; 2; 3; 4 |] in
    match Runtime_shm.parallel_snapshot ~seed ~inputs () with
    | Ok r ->
        Array.iteri
          (fun p -> function
            | Some o ->
                Alcotest.(check bool) "own input present" true
                  (Iset.mem inputs.(p) o)
            | None -> Alcotest.fail "wait-free run must produce all outputs")
          r.Runtime_shm.Snapshot_run.outputs
    | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e)
  done

let test_parallel_snapshot_groups () =
  let inputs = [| 7; 7; 8; 8; 9 |] in
  match Runtime_shm.parallel_snapshot ~seed:3 ~inputs () with
  | Ok _ -> () (* containment + group checks run inside *)
  | Error e -> Alcotest.fail e

let test_parallel_snapshot_records_steps () =
  match Runtime_shm.parallel_snapshot ~seed:1 ~inputs:[| 1; 2; 3 |] () with
  | Ok r ->
      Array.iter
        (fun s ->
          (* at least one write and one full scan *)
          Alcotest.(check bool) "worked" true (s >= 4))
        r.Runtime_shm.Snapshot_run.steps
  | Error e -> Alcotest.fail e

let test_parallel_renaming_valid () =
  let inputs = [| 1; 2; 3; 4 |] in
  let cfg = Algorithms.Renaming.standard ~n:4 in
  match Runtime_shm.Renaming_run.run ~seed:5 ~cfg ~inputs () with
  | Ok r ->
      let outcome =
        Tasks.Outcome.make ~inputs
          ~outputs:
            (Array.map
               (Option.map (fun (o : Algorithms.Renaming.output) -> o.name_out))
               r.Runtime_shm.Renaming_run.outputs)
          ()
      in
      (match Tasks.Renaming_task.check outcome with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Tasks.Task_failure.to_string e))
  | Error e -> Alcotest.fail e

let test_parallel_consensus_agreement () =
  for seed = 0 to 4 do
    let inputs = [| 1; 2; 1; 2 |] in
    match Runtime_shm.parallel_consensus ~seed ~inputs () with
    | Ok (_, _undecided) -> () (* agreement/validity checked inside *)
    | Error e -> Alcotest.fail (Printf.sprintf "seed %d: %s" seed e)
  done

let test_write_scan_times_out () =
  (* A non-terminating protocol must hit the step budget and report it. *)
  let module R = Runtime_shm.Make (Algorithms.Write_scan) in
  let cfg = Algorithms.Write_scan.cfg ~n:2 ~m:2 in
  match R.run ~seed:1 ~max_steps:5_000 ~cfg ~inputs:[| 1; 2 |] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "write-scan must not terminate"

let test_write_scan_timeout_tolerated () =
  let module R = Runtime_shm.Make (Algorithms.Write_scan) in
  let cfg = Algorithms.Write_scan.cfg ~n:2 ~m:2 in
  match R.run ~seed:1 ~max_steps:5_000 ~allow_timeout:true ~cfg ~inputs:[| 1; 2 |] () with
  | Ok r ->
      Array.iter
        (fun o -> Alcotest.(check bool) "no outputs" true (o = None))
        r.R.outputs
  | Error e -> Alcotest.fail e

let test_fixed_wiring_respected () =
  (* With the identity wiring and a single processor the snapshot output is
     deterministic regardless of domain scheduling. *)
  let module R = Runtime_shm.Snapshot_run in
  let cfg = Algorithms.Snapshot.standard ~n:1 in
  let wiring = Anonmem.Wiring.identity ~n:1 ~m:1 in
  match R.run ~wiring ~cfg ~inputs:[| 42 |] () with
  | Ok r ->
      Alcotest.(check bool) "singleton {42}" true
        (match r.R.outputs.(0) with
        | Some o -> Iset.equal o (Iset.of_list [ 42 ])
        | None -> false)
  | Error e -> Alcotest.fail e

let test_bad_inputs_rejected () =
  let module R = Runtime_shm.Snapshot_run in
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Runtime_shm.run: bad inputs") (fun () ->
      ignore (R.run ~cfg ~inputs:[| 1 |] ()))

let () =
  Alcotest.run "runtime"
    [
      ( "domains",
        [
          Alcotest.test_case "parallel snapshot valid (10 seeds)" `Quick
            test_parallel_snapshot_valid;
          Alcotest.test_case "parallel snapshot with groups" `Quick
            test_parallel_snapshot_groups;
          Alcotest.test_case "steps recorded" `Quick test_parallel_snapshot_records_steps;
          Alcotest.test_case "parallel renaming valid" `Quick
            test_parallel_renaming_valid;
          Alcotest.test_case "parallel consensus agreement" `Quick
            test_parallel_consensus_agreement;
          Alcotest.test_case "non-terminating protocol times out" `Quick
            test_write_scan_times_out;
          Alcotest.test_case "timeout tolerated when allowed" `Quick
            test_write_scan_timeout_tolerated;
          Alcotest.test_case "fixed wiring" `Quick test_fixed_wiring_respected;
          Alcotest.test_case "input validation" `Quick test_bad_inputs_rejected;
        ] );
    ]
