test/test_figure2.ml: Alcotest Algorithms Analysis Array Fmt Iset List Printf Repro_util Snapshot_ext Write_scan_ext
