(** Work-stealing parallel exploration on a pool of OCaml 5 domains —
    the successor to {!Par_explorer}'s layer-synchronous BFS.

    The layer-synchronous design pays two full barriers per BFS layer,
    and every domain idles for the slowest one at each; BENCH_mc.json
    shows it losing to the sequential engine outright.  This engine
    removes the barriers entirely:

    - Every domain owns a {!Deque} (a Chase–Lev-style work-stealing
      deque): it pushes and pops frontier work at the bottom without
      synchronization against itself, while idle domains {e steal} from
      the top of a uniformly random victim with a single CAS.  Work
      items are self-contained [(canonical key, gid)] pairs, so a thief
      never reads another shard's table (whose arena may be growing
      under its owner's hands).

    - State {e ownership} still follows {!Par_explorer}: the canonical
      key hashes to the owning domain, and only the owner interns keys,
      assigns ids, records incoming edges, checks the invariant, and
      mutates its shard — so the per-shard structures remain lock-free
      by construction.  An expander (owner or thief) sends each
      candidate successor to its owner's inbox (the Treiber-stack
      channel reused from {!Par_explorer.Chan}).

    - Termination is detected by a global in-flight counter: [pending]
      counts undelivered messages plus unexpanded frontier items, and
      every unit's derived units are incremented {e before} the unit
      itself is decremented, so [pending = 0] is reachable only at true
      global quiescence — there is no transient zero to race with, and
      the first worker to observe it stops the pool.  Violations, the
      state limit and governor trips short-circuit through the same
      single stop cell (first cause wins).

    Without layers, traces are valid executions but not necessarily
    shortest (each parent link is still a real step); state, transition
    and terminal counts remain exactly the sequential BFS's, which the
    differential matrix asserts.  Wait-freedom is decided post-join by
    the same dense-CSR Tarjan pass as {!Par_explorer}.  The engine has
    no checkpoint support (there is no consistent cut to snapshot
    without stopping the pool); pair it with a governor for bounded
    runs, or use the sequential/fingerprint engines for durability. *)

open Repro_util

(** A Chase–Lev-style work-stealing deque.  The owner pushes and pops at
    the bottom; thieves steal at the top with a CAS.  The buffer grows
    before indices ever wrap, so a logical slot is never overwritten
    while a thief may still read it, and OCaml's seq-cst atomics give
    the (stronger than required) ordering of the classic algorithm.
    [steal] returning [None] means "empty or lost a race" — callers
    treat both as a failed attempt and move on. *)
module Deque = struct
  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    buf : 'a option array Atomic.t;
  }

  let create ?(capacity = 64) () =
    let cap = max 8 capacity in
    let rec pow2 c = if c >= cap then c else pow2 (c * 2) in
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      buf = Atomic.make (Array.make (pow2 8) None);
    }

  (* Owner-only.  Copies the live window [tp, b) into a doubled buffer at
     the same logical indices; thieves still holding the old buffer read
     stale but never-overwritten slots and then validate with their CAS
     on [top]. *)
  let grow t a tp b =
    let len = Array.length a in
    let a' = Array.make (len * 2) None in
    for i = tp to b - 1 do
      a'.(i land ((2 * len) - 1)) <- a.(i land (len - 1))
    done;
    Atomic.set t.buf a';
    a'

  let push t x =
    let b = Atomic.get t.bottom and tp = Atomic.get t.top in
    let a = Atomic.get t.buf in
    let a = if b - tp >= Array.length a then grow t a tp b else a in
    a.(b land (Array.length a - 1)) <- Some x;
    Atomic.set t.bottom (b + 1)

  let pop t =
    let b = Atomic.get t.bottom - 1 in
    let a = Atomic.get t.buf in
    Atomic.set t.bottom b;
    let tp = Atomic.get t.top in
    if b < tp then begin
      (* already empty: restore *)
      Atomic.set t.bottom tp;
      None
    end
    else begin
      let x = a.(b land (Array.length a - 1)) in
      if b > tp then x
      else begin
        (* last element: race the thieves for it *)
        let won = Atomic.compare_and_set t.top tp (tp + 1) in
        Atomic.set t.bottom (tp + 1);
        if won then x else None
      end
    end

  let steal t =
    let tp = Atomic.get t.top in
    let b = Atomic.get t.bottom in
    if b <= tp then None
    else begin
      let a = Atomic.get t.buf in
      let x = a.(tp land (Array.length a - 1)) in
      if Atomic.compare_and_set t.top tp (tp + 1) then x else None
    end

  (** Owner-side size estimate (exact when quiescent). *)
  let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)
end

module Make (P : Explorer.CHECKABLE) = struct
  module E = Explorer.Make (P)

  type stats = {
    domains : int;
    states : int;
    transitions : int;
    terminals : int;
    steals : int;  (** successful steals across the pool *)
  }

  type result =
    | Ws_ok of { stats : stats; wait_free : bool; divergent : int list }
    | Ws_invariant_failed of {
        stats : stats;
        message : string;
        trace : (int * E.state) list;
            (** a valid witness execution (not necessarily shortest:
                work stealing abandons layer order); concretized when
                reduced *)
      }
    | Ws_state_limit of int
    | Ws_exhausted of { reason : Governor.reason; states : int }

  type shard = {
    table : State_table.t;
    parent : int Vec.t;  (** (predecessor gid lsl 4) lor pid; -1 at root *)
    edge_src : int Vec.t;  (** (src gid lsl 4) lor pid *)
    edge_dst : int Vec.t;  (** dst gid *)
    mutable terminal : int;  (** counted by the {e expander}'s shard *)
    mutable transitions : int;
  }

  type stop_cause =
    | Running
    | All_done
    | Hit_limit
    | Hit_violation
    | Hit_exhausted of Governor.reason

  (** [explore ~domains ...] — same optional knobs and semantics as
      {!Par_explorer.Make.explore}, plus [?governor] (ticked once per
      interned state, under a small mutex: {!Governor} is not
      thread-safe).  [domains = 1] degrades to a deque-driven sequential
      BFS with zero steals. *)
  let explore ?(max_states = 50_000_000) ?invariant ?stop_expansion
      ?(reduction = false) ?governor ~domains ~cfg ~wiring ~inputs () =
    Explorer.guard_processors ~engine:"Ws_explorer.explore" (P.processors cfg);
    if domains < 1 then invalid_arg "Ws_explorer.explore: domains < 1";
    let nd = domains in
    let canon =
      if reduction then Some (E.canon_of ~cfg ~wiring ~inputs) else None
    in
    let canonical key =
      match canon with Some c -> Canon.canonicalize c key | None -> key
    in
    let owner key = (Hashtbl.hash key land max_int) mod nd in
    let shards =
      Array.init nd (fun _ ->
          {
            table = State_table.create ~key_width:(E.key_width cfg) ();
            parent = Vec.create ();
            edge_src = Vec.create ();
            edge_dst = Vec.create ();
            terminal = 0;
            transitions = 0;
          })
    in
    let deques = Array.init nd (fun _ -> Deque.create ()) in
    (* inbox.(dst): MPSC — any expander pushes batches, only dst drains *)
    let inbox = Array.init nd (fun _ -> Par_explorer.Chan.make ()) in
    let pending = Atomic.make 0 in
    let total_states = Atomic.make 0 in
    let steals = Atomic.make 0 in
    let stop = Atomic.make Running in
    let request cause = ignore (Atomic.compare_and_set stop Running cause) in
    let running () = match Atomic.get stop with Running -> true | _ -> false in
    let violation : (int * string) option Atomic.t = Atomic.make None in
    let gov_mutex = Mutex.create () in
    let tick_governor () =
      match governor with
      | None -> ()
      | Some g ->
          Mutex.lock gov_mutex;
          let tripped = Governor.tick g in
          Mutex.unlock gov_mutex;
          (match tripped with
          | Some reason -> request (Hit_exhausted reason)
          | None -> ())
    in
    let worker w =
      let shard = shards.(w) in
      let gid lid = (lid * nd) + w in
      (* Owner-side intern of a key probed absent: id, parent link,
         invariant, frontier push.  The caller's pending unit transmutes
         into the new frontier item's unit — no counter traffic. *)
      let create key ~from =
        let lid = State_table.intern shard.table key in
        ignore (Vec.push shard.parent from);
        Atomic.incr total_states;
        (match invariant with
        | Some check -> (
            match check (E.decode_state cfg key) with
            | Ok () -> ()
            | Error message ->
                ignore
                  (Atomic.compare_and_set violation None
                     (Some (gid lid, message)));
                request Hit_violation)
        | None -> ());
        tick_governor ();
        Deque.push deques.(w) (key, gid lid);
        lid
      in
      (* Owner-side delivery of one message: consume its pending unit
         (or hand it to the fresh frontier item). *)
      let deliver (key, from) =
        (* [from < 0] only for the routed initial state: no edge then. *)
        match State_table.find shard.table key with
        | Some lid ->
            if from >= 0 then begin
              ignore (Vec.push shard.edge_src from);
              ignore (Vec.push shard.edge_dst (gid lid))
            end;
            Atomic.decr pending
        | None ->
            if Atomic.get total_states >= max_states then begin
              request Hit_limit;
              Atomic.decr pending
            end
            else begin
              let lid = create key ~from in
              if from >= 0 then begin
                ignore (Vec.push shard.edge_src from);
                ignore (Vec.push shard.edge_dst (gid lid))
              end
            end
      in
      let drain_inbox () =
        match Par_explorer.Chan.drain inbox.(w) with
        | [] -> ()
        | batches ->
            List.iter (fun batch -> List.iter deliver (List.rev batch))
              (List.rev batches)
      in
      (* Expand one work item (ours or stolen).  Every emitted message's
         pending unit is incremented before this item's unit is
         released, preserving the no-transient-zero invariant. *)
      let expand (key, src_gid) =
        let st = E.decode_state cfg key in
        let expand_it =
          match stop_expansion with Some f -> not (f st) | None -> true
        in
        (if expand_it then
           match E.enabled cfg st with
           | [] -> shard.terminal <- shard.terminal + 1
           | en ->
               let batches = Array.make nd [] in
               List.iter
                 (fun p ->
                   shard.transitions <- shard.transitions + 1;
                   let st' = E.successor cfg wiring st p in
                   let key' = canonical (E.encode_state cfg st') in
                   let from = (src_gid lsl 4) lor p in
                   Atomic.incr pending;
                   let dst = owner key' in
                   batches.(dst) <- (key', from) :: batches.(dst))
                 en;
               for dst = 0 to nd - 1 do
                 if dst = w then List.iter deliver (List.rev batches.(dst))
                 else Par_explorer.Chan.push inbox.(dst) batches.(dst)
               done);
        Atomic.decr pending
      in
      (* xorshift victim picker, deterministically seeded per worker *)
      let rng = ref ((w * 0x9e3779b9) lor 1) in
      let random_victim () =
        let x = !rng in
        let x = x lxor (x lsl 13) in
        let x = x lxor (x lsr 7) in
        let x = x lxor (x lsl 17) in
        rng := x;
        let r = (x land max_int) mod (nd - 1) in
        if r >= w then r + 1 else r
      in
      (if w = 0 then
         (* Seed: the initial state's pending unit was pre-charged by the
            caller; route it through the owner's create. *)
         let init_key =
           canonical (E.encode_state cfg (E.init_state ~cfg ~inputs))
         in
         let o = owner init_key in
         if o = w then ignore (create init_key ~from:(-1))
         else begin
           Par_explorer.Chan.push inbox.(o) [ (init_key, -1) ];
           (* correct the double-count: create would transmute the unit,
              but the message path pre-charges its own *)
           ()
         end);
      while running () do
        drain_inbox ();
        match Deque.pop deques.(w) with
        | Some item -> expand item
        | None ->
            if Atomic.get pending = 0 then request All_done
            else if nd > 1 then begin
              match Deque.steal deques.(random_victim ()) with
              | Some item ->
                  Atomic.incr steals;
                  expand item
              | None -> Domain.cpu_relax ()
            end
            else Domain.cpu_relax ()
      done
    in
    (* One unit for the initial state, charged before the pool starts. *)
    Atomic.set pending 1;
    (* The seed route above pushes the init key as a message when worker 0
       does not own it; that message path consumes the pre-charged unit
       exactly like any other, so no extra accounting is needed. *)
    let pool =
      Array.init (nd - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    Array.iter Domain.join pool;
    (* Post-join: the calling domain owns everything again. *)
    let states =
      Array.fold_left (fun a s -> a + State_table.length s.table) 0 shards
    in
    let stats =
      {
        domains = nd;
        states;
        transitions = Array.fold_left (fun a s -> a + s.transitions) 0 shards;
        terminals = Array.fold_left (fun a s -> a + s.terminal) 0 shards;
        steals = Atomic.get steals;
      }
    in
    let key_of gid = State_table.key_of_id shards.(gid mod nd).table (gid / nd) in
    let parent_of gid = Vec.get shards.(gid mod nd).parent (gid / nd) in
    let trace_of gid =
      let rec up gid acc =
        let packed = parent_of gid in
        if packed < 0 then acc
        else up (packed asr 4) ((packed land 15, key_of gid) :: acc)
      in
      let chain = up gid [] in
      match canon with
      | None -> List.map (fun (p, key) -> (p, E.decode_state cfg key)) chain
      | Some c -> E.concretize ~cfg ~wiring ~canon:c ~inputs (List.map snd chain)
    in
    match Atomic.get stop with
    | Hit_violation ->
        let gid, message = Option.get (Atomic.get violation) in
        Ws_invariant_failed { stats; message; trace = trace_of gid }
    | Hit_exhausted reason -> Ws_exhausted { reason; states }
    | Hit_limit -> Ws_state_limit states
    | Running | All_done ->
        (* Densify gids and run the shared SCC pass, exactly as the
           layer-synchronous engine does. *)
        let offset = Array.make (nd + 1) 0 in
        for s = 0 to nd - 1 do
          offset.(s + 1) <- offset.(s) + State_table.length shards.(s).table
        done;
        let dense gid = offset.(gid mod nd) + (gid / nd) in
        let e = Array.fold_left (fun a s -> a + Vec.length s.edge_src) 0 shards in
        let deg = Array.make (states + 1) 0 in
        Array.iter
          (fun s ->
            Vec.iteri
              (fun _ packed ->
                let u = dense (packed asr 4) in
                deg.(u + 1) <- deg.(u + 1) + 1)
              s.edge_src)
          shards;
        for i = 1 to states do
          deg.(i) <- deg.(i) + deg.(i - 1)
        done;
        let adj = Array.make (max e 1) 0 in
        let labels = Array.make (max e 1) 0 in
        let cursor = Array.copy deg in
        Array.iter
          (fun s ->
            Vec.iteri
              (fun i packed ->
                let u = dense (packed asr 4) in
                adj.(cursor.(u)) <- dense (Vec.get s.edge_dst i);
                labels.(cursor.(u)) <- packed land 15;
                cursor.(u) <- cursor.(u) + 1)
              s.edge_src)
          shards;
        let comp, _ =
          Scc.tarjan ~n:states ~off:(Array.get deg) ~adj:(Array.get adj)
        in
        let bad = Hashtbl.create 8 in
        for u = 0 to states - 1 do
          for i = deg.(u) to deg.(u + 1) - 1 do
            if comp.(u) = comp.(adj.(i)) then Hashtbl.replace bad labels.(i) ()
          done
        done;
        let divergent =
          List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) bad [])
        in
        Ws_ok { stats; wait_free = divergent = []; divergent }

  (** Work-stealing counterpart of {!Explorer.Make.check_all_wirings}:
      same summary type and error strings as the other engines, plus the
      governor's [exhausted] error shape (the engine itself carries no
      checkpoint, so exhaustion is terminal for the sweep). *)
  let check_all_wirings ?max_states ?invariant ?(require_wait_free = true)
      ?on_wiring ?wirings ?(reduction = false) ?governor ~domains ~cfg ~inputs
      () =
    let n = P.processors cfg and m = P.registers cfg in
    let wirings =
      match wirings with
      | Some ws -> ws
      | None -> Anonmem.Wiring.enumerate ~n ~m ~fix_first:true
    in
    let rec go (summary : Explorer.summary) = function
      | [] -> Ok summary
      | wiring :: rest -> (
          match
            explore ?max_states ?invariant ~reduction ?governor ~domains ~cfg
              ~wiring ~inputs ()
          with
          | Ws_exhausted { reason; states } ->
              Error
                (Fmt.str "exhausted (%a) at %d states" Governor.pp_reason
                   reason states)
          | Ws_state_limit k -> Error (Fmt.str "state limit hit at %d states" k)
          | Ws_invariant_failed { message; _ } ->
              Error
                (Fmt.str "invariant violated under wiring %a: %s"
                   Anonmem.Wiring.pp wiring message)
          | Ws_ok { stats; wait_free; divergent } ->
              if require_wait_free && not wait_free then
                Error
                  (Fmt.str
                     "wait-freedom violated under wiring %a: processors %a \
                      diverge"
                     Anonmem.Wiring.pp wiring
                     Fmt.(list ~sep:comma int)
                     divergent)
              else begin
                let summary =
                  {
                    Explorer.wirings_checked = summary.wirings_checked + 1;
                    total_states = summary.total_states + stats.states;
                    max_space_states = max summary.max_space_states stats.states;
                    total_transitions =
                      summary.total_transitions + stats.transitions;
                    terminal_states = summary.terminal_states + stats.terminals;
                    total_pruned = summary.total_pruned;
                    all_wait_free = summary.all_wait_free && wait_free;
                  }
                in
                (match on_wiring with Some f -> f wiring summary | None -> ());
                go summary rest
              end)
    in
    go Explorer.empty_summary wirings
end
