lib/algorithms/named_snapshot.mli: Anonmem Fmt Iset Repro_util
