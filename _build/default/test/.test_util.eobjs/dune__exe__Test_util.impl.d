test/test_util.ml: Alcotest Array Digraph Fmt Fun Hashtbl Iset List Permutation QCheck QCheck_alcotest Repro_util Rng Stats String Text_table Vec
