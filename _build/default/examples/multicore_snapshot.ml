(* The snapshot algorithm on real hardware parallelism.

   Everything else in this repository drives the algorithms through a
   simulated scheduler; here the same protocol value runs on one OCaml 5
   domain per processor, with the anonymous registers backed by Atomic.t
   cells and the OS scheduler playing the adversary.  Wait-freedom means
   every domain terminates no matter how the hardware interleaves them, and
   the collected snapshots must still be related by containment.

   Run with: dune exec examples/multicore_snapshot.exe *)

let () =
  let inputs = [| 1; 2; 3; 4; 5; 6 |] in
  let n = Array.length inputs in
  Printf.printf "running the Figure-3 snapshot on %d domains...\n%!" n;
  (match Runtime_shm.parallel_snapshot ~seed:1 ~inputs () with
  | Error e ->
      prerr_endline ("parallel run failed: " ^ e);
      exit 1
  | Ok r ->
      Array.iteri
        (fun p -> function
          | Some o ->
              Printf.printf "  domain %d: %-16s (%d shared-memory ops)\n" (p + 1)
                (Repro_util.Iset.to_string o)
                r.Runtime_shm.Snapshot_run.steps.(p)
          | None -> assert false)
        r.Runtime_shm.Snapshot_run.outputs;
      print_endline "containment validated across all outputs.");
  (* Many rounds with fresh wirings: the validation inside
     [parallel_snapshot] re-checks the task properties every time. *)
  let rounds = 50 in
  let ok = ref 0 in
  for seed = 1 to rounds do
    match Runtime_shm.parallel_snapshot ~seed ~inputs () with
    | Ok _ -> incr ok
    | Error e ->
        Printf.printf "round %d FAILED: %s\n" seed e;
        exit 1
  done;
  Printf.printf "%d/%d parallel rounds produced valid snapshots.\n" !ok rounds;
  (* Consensus on domains: obstruction-free, so under real contention some
     domains may exhaust their budget undecided; whoever decides agrees. *)
  print_endline "\nobstruction-free consensus on domains (budget-limited):";
  match Runtime_shm.parallel_consensus ~seed:2 ~inputs () with
  | Ok (r, undecided) ->
      Array.iteri
        (fun p -> function
          | Some v -> Printf.printf "  domain %d decided %d\n" (p + 1) v
          | None -> Printf.printf "  domain %d: undecided (budget)\n" (p + 1))
        r.Runtime_shm.Consensus_run.outputs;
      Printf.printf "agreement/validity hold; %d undecided.\n" undecided
  | Error e ->
      prerr_endline ("parallel consensus failed: " ^ e);
      exit 1
