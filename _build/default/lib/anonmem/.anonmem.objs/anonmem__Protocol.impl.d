lib/anonmem/protocol.ml: Fmt
