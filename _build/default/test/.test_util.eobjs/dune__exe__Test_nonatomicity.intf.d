test/test_nonatomicity.mli:
