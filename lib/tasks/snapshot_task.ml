(** The snapshot task (Definition 3.2) and its group version (Section 3.2).

    Group version: each processor outputs a set of participating group
    identifiers containing its own group, and for every output sample (one
    representative per group) the chosen sets are pairwise related by
    containment.  Note that two processors of the {e same} group are allowed
    to output incomparable sets — the 4-processor example of Section 3.2
    (groups A={1}, B={2,3}, C={4}) is checked in the test-suite.

    The Figure-3 algorithm actually guarantees the stronger property that
    {e all} outputs are pairwise related by containment; {!check_strong}
    validates that. *)

open Repro_util

type output = Iset.t


(** Per-processor validity: the output contains the processor's own group
    and only participating groups. *)
let check_validity (t : output Outcome.t) =
  let groups = Outcome.participating_groups t in
  let rec go p =
    if p >= Outcome.processors t then Ok ()
    else
      match t.Outcome.outputs.(p) with
      | None -> go (p + 1)
      | Some s ->
          let g = Outcome.group_of t p in
          if not (Iset.mem g s) then
            Task_failure.failf ~processors:[ p ] ~groups:[ g ]
              Task_failure.Validity
              "p%d (group %d) output %a missing its own group" (p + 1) g
              Iset.pp_set s
          else if not (Iset.subset s groups) then
            Task_failure.failf ~processors:[ p ] ~groups:[ g ]
              Task_failure.Validity
              "p%d output %a contains non-participating groups (participants %a)"
              (p + 1) Iset.pp_set s Iset.pp_set groups
          else go (p + 1)
  in
  go 0

(** Containment within one output sample, as Definition 3.4 requires. *)
let check_sample ~groups:_ sample =
  let rec go = function
    | [] -> Ok ()
    | (g1, s1) :: rest ->
        let clash =
          List.find_opt (fun (_, s2) -> not (Iset.comparable s1 s2)) rest
        in
        (match clash with
        | Some (g2, s2) ->
            Task_failure.failf ~groups:[ g1; g2 ] Task_failure.Containment
              "groups %d and %d chose incomparable sets %a / %a" g1 g2
              Iset.pp_set s1 Iset.pp_set s2
        | None -> go rest)
  in
  go sample

(** Group solvability (Definition 3.4): validity plus containment of every
    output sample. *)
let check_group_solution t =
  match check_validity t with
  | Error _ as e -> e
  | Ok () -> Outcome.for_all_samples t ~check:check_sample

(** The stronger guarantee of Section 5.3.2: all outputs (even within a
    group) pairwise related by containment. *)
let check_strong t =
  match check_validity t with
  | Error _ as e -> e
  | Ok () ->
      let outs = Outcome.terminated t in
      let rec go = function
        | [] -> Ok ()
        | s1 :: rest ->
            if List.for_all (Iset.comparable s1) rest then go rest
            else
              Task_failure.failf Task_failure.Containment
                "incomparable outputs present (e.g. %a)" Iset.pp_set s1
      in
      go outs
