(** The consensus task (Definition 3.1) and its group version.

    Group version (Section 3.2): processors must agree on the identifier of
    a participating group.  Formally, every output sample must be a
    constant function onto a participating group identifier.

    {!check_agreement} is the stronger, sample-independent property that
    every pair of outputs (including within a group) is equal — what the
    Figure-5 algorithm actually achieves. *)

open Repro_util

type output = int

let result_errorf fmt = Fmt.kstr (fun s -> Error s) fmt

let check_validity (t : output Outcome.t) =
  let groups = Outcome.participating_groups t in
  let bad =
    List.find_opt (fun v -> not (Iset.mem v groups)) (Outcome.terminated t)
  in
  match bad with
  | Some v ->
      result_errorf "decided value %d is not a participating group (%a)" v
        Iset.pp_set groups
  | None -> Ok ()

let check_sample ~groups:_ sample =
  match sample with
  | [] -> Ok ()
  | (_, v) :: rest -> (
      match List.find_opt (fun (_, v') -> v' <> v) rest with
      | Some (g', v') ->
          result_errorf "disagreement: %d vs %d (group %d)" v v' g'
      | None -> Ok ())

let check_group_solution t =
  match check_validity t with
  | Error _ as e -> e
  | Ok () -> Outcome.for_all_samples t ~check:check_sample

let check_agreement t =
  match Outcome.terminated t with
  | [] -> Ok ()
  | v :: rest ->
      if List.for_all (Int.equal v) rest then Ok ()
      else result_errorf "outputs disagree: %a" Fmt.(list ~sep:comma int) (v :: rest)

(** Full check for the Figure-5 algorithm: agreement across all processors
    plus validity. *)
let check t =
  match check_agreement t with Error _ as e -> e | Ok () -> check_validity t
