(** The snapshot task (Definition 3.2) and its group version
    (Section 3.2): each processor outputs a set of participating group
    identifiers containing its own group, and within every output sample
    the chosen sets are pairwise related by containment.  Two processors
    of the same group may legally output incomparable sets — the paper's
    4-processor example is checked in the test-suite. *)

type output = Repro_util.Iset.t

val check_validity : output Outcome.t -> (unit, Task_failure.t) result
(** Own group present and only participating groups. *)

val check_sample :
  groups:Repro_util.Iset.t ->
  (int * output) list ->
  (unit, Task_failure.t) result
(** Pairwise containment within one output sample. *)

val check_group_solution : output Outcome.t -> (unit, Task_failure.t) result
(** Group solvability per Definition 3.4: validity plus containment of
    every output sample. *)

val check_strong : output Outcome.t -> (unit, Task_failure.t) result
(** The stronger guarantee the Figure-3 algorithm provides
    (Section 5.3.2): all outputs pairwise related by containment. *)
