examples/pathological_trace.ml: Algorithms Analysis Array List Printf Repro_util Snapshot_ext Write_scan_ext
