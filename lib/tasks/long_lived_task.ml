(** Group solvability for the long-lived snapshot (Section 7).

    The paper specifies its long-lived snapshot without groups and leaves
    the group formulation to future work, sketching the recipe: interpret
    inputs as groups and treat {e each invocation} as performed by a fresh
    logical processor.  This module implements that recipe:

    - a {e history} records every completed invocation as
      [(processor, input, output)] in real-time order of completion;
    - {e per-processor guarantees}: each processor's outputs are monotone
      (views never shrink across invocations) and its [k]-th output
      contains all [k] inputs it has used so far;
    - {e validity}: outputs only contain inputs some invocation used;
    - {e group solvability} (Definition 3.4 transferred): the logical
      processors are the invocations, grouped by their input value; every
      output sample — one invocation per participating group — must be
      pairwise related by containment.

    The paper's stronger non-group specification (all outputs pairwise
    related by containment) is {!check_strong}; our implementation
    achieves it, and the tests check both. *)

open Repro_util

type invocation = { processor : int; input : int; output : Iset.t }

let inputs_used history = Iset.of_list (List.map (fun i -> i.input) history)

let check_validity history =
  let used = inputs_used history in
  let rec go = function
    | [] -> Ok ()
    | { processor; output; _ } :: rest ->
        if not (Iset.subset output used) then
          Task_failure.failf ~processors:[ processor ] Task_failure.Validity
            "p%d output %a contains values never used as input"
            (processor + 1) Iset.pp_set output
        else go rest
  in
  go history

(** Each processor's outputs are monotone and its k-th output contains the
    k inputs it has used so far (the history lists invocations in
    completion order, so a processor's own sub-history is in its
    invocation order). *)
let check_per_processor history =
  let by_processor = Hashtbl.create 8 in
  List.iter
    (fun inv ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_processor inv.processor) in
      Hashtbl.replace by_processor inv.processor (inv :: prev))
    history;
  Hashtbl.fold
    (fun processor invs acc ->
      match acc with
      | Error _ -> acc
      | Ok () ->
          let invs = List.rev invs in
          let rec go used_so_far prev_output = function
            | [] -> Ok ()
            | inv :: rest ->
                let used = Iset.add inv.input used_so_far in
                if not (Iset.subset used inv.output) then
                  Task_failure.failf ~processors:[ processor ]
                    Task_failure.Validity
                    "p%d output %a misses one of its own inputs %a"
                    (processor + 1) Iset.pp_set inv.output Iset.pp_set used
                else if not (Iset.subset prev_output inv.output) then
                  Task_failure.failf ~processors:[ processor ]
                    Task_failure.Monotonicity "p%d outputs shrank"
                    (processor + 1)
                else go used inv.output rest
          in
          go Iset.empty Iset.empty invs)
    by_processor (Ok ())

(** Definition 3.4 over logical processors: one invocation per
    participating group (input value), sampled exhaustively. *)
let check_group_solution history =
  match (check_validity history, check_per_processor history) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok (), Ok () ->
      let outputs =
        Array.of_list (List.map (fun i -> Some i.output) history)
      in
      let inputs = Array.of_list (List.map (fun i -> i.input) history) in
      let outcome = Outcome.make ~inputs ~outputs () in
      Outcome.for_all_samples outcome ~check:(fun ~groups:_ sample ->
          let rec go = function
            | [] -> Ok ()
            | (g1, s1) :: rest -> (
                match
                  List.find_opt (fun (_, s2) -> not (Iset.comparable s1 s2)) rest
                with
                | Some (g2, s2) ->
                    Task_failure.failf ~groups:[ g1; g2 ]
                      Task_failure.Containment
                      "groups %d and %d chose incomparable outputs %a / %a" g1
                      g2 Iset.pp_set s1 Iset.pp_set s2
                | None -> go rest)
          in
          go sample)

(** The paper's non-group specification: every two outputs (across all
    processors and invocations) related by containment. *)
let check_strong history =
  match (check_validity history, check_per_processor history) with
  | (Error _ as e), _ | _, (Error _ as e) -> e
  | Ok (), Ok () ->
      let rec go = function
        | [] -> Ok ()
        | { output = s1; _ } :: rest ->
            if List.for_all (fun i -> Iset.comparable s1 i.output) rest then
              go rest
            else
              Task_failure.failf Task_failure.Containment
                "incomparable long-lived outputs"
      in
      go history
