(** Structured oracle failures.

    Every task checker in this library reports violations as a
    {!t}: which property of the task specification broke, which
    processors and groups are implicated, and a human-readable
    message.  The fuzzing harness keys its reports and shrinking
    decisions on the [property] field, while the tests and the CLI
    render {!pp}. *)

type property =
  | Validity  (** an output mentions a non-participant or misses the owner *)
  | Containment  (** snapshot outputs not related by containment *)
  | Agreement  (** consensus outputs differ *)
  | Name_range  (** a renaming name fell outside the adaptive range *)
  | Name_uniqueness  (** two groups share a name *)
  | Monotonicity  (** a long-lived output shrank across invocations *)
  | Wait_freedom  (** a processor exceeded its step budget without halting *)
  | Mutual_exclusion  (** two processors occupied the critical section *)
  | Deadlock  (** a fair execution in which no live processor progresses *)
  | Leader_uniqueness  (** more than one processor elected itself leader *)
  | Property of string  (** anything else, by name *)

type t = {
  property : property;
  processors : int list;  (** implicated processors, 0-based; [] if unknown *)
  groups : int list;  (** implicated group identifiers; [] if unknown *)
  message : string;
}

let property_name = function
  | Validity -> "validity"
  | Containment -> "containment"
  | Agreement -> "agreement"
  | Name_range -> "name-range"
  | Name_uniqueness -> "name-uniqueness"
  | Monotonicity -> "monotonicity"
  | Wait_freedom -> "wait-freedom"
  | Mutual_exclusion -> "mutual-exclusion"
  | Deadlock -> "deadlock-freedom"
  | Leader_uniqueness -> "leader-uniqueness"
  | Property s -> s

let v ?(processors = []) ?(groups = []) property message =
  { property; processors; groups; message }

let failf ?processors ?groups property fmt =
  Fmt.kstr (fun message -> Error (v ?processors ?groups property message)) fmt

let pp ppf t =
  Fmt.pf ppf "[%s%a%a] %s" (property_name t.property)
    (fun ppf -> function
      | [] -> ()
      | ps ->
          Fmt.pf ppf "; p%a"
            Fmt.(list ~sep:(any ",p") int)
            (List.map (fun p -> p + 1) ps))
    t.processors
    (fun ppf -> function
      | [] -> ()
      | gs -> Fmt.pf ppf "; groups %a" Fmt.(list ~sep:(any ",") int) gs)
    t.groups t.message

let to_string t = Fmt.str "%a" pp t
