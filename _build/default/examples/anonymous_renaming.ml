(* Adaptive renaming among anonymous sensors (Figure 4).

   A field of disposable sensors is dropped with no serial numbers; sensors
   of the same production batch are indistinguishable (same group).  Each
   sensor must claim a transmission slot.  Group-solving adaptive renaming
   gives every *batch* pairwise-distinct slots in the adaptive range
   1..M(M+1)/2 for M participating batches: sensors from different batches
   never collide, and sensors of the same batch may share a slot — which is
   fine, duplicates within a batch transmit identical data anyway.

   Run with: dune exec examples/anonymous_renaming.exe *)

let batches = [| 1; 1; 2; 3; 3; 3 |] (* six sensors from three batches *)

let () =
  let n = Array.length batches in
  let m =
    Repro_util.Iset.cardinal (Repro_util.Iset.of_list (Array.to_list batches))
  in
  Printf.printf "%d anonymous sensors from %d batches claim slots\n" n m;
  Printf.printf "batch of each sensor: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int batches)));
  Printf.printf "adaptive slot range: 1..%d\n\n"
    (Algorithms.Renaming.max_name ~groups:m);
  match Core.solve_renaming ~seed:5 ~inputs:batches () with
  | Error e ->
      prerr_endline ("renaming failed: " ^ e);
      exit 1
  | Ok { outputs; _ } ->
      Array.iteri
        (fun p (o : Algorithms.Renaming.output) ->
          Printf.printf
            "sensor %d (batch %d): slot %-2d  (snapshot %s, size %d, rank %d)\n"
            (p + 1) batches.(p) o.name_out
            (Repro_util.Iset.to_string o.snapshot)
            o.size o.rank)
        outputs;
      (* Cross-batch distinctness: the guarantee Section 6 proves. *)
      print_newline ();
      Array.iteri
        (fun p (op : Algorithms.Renaming.output) ->
          Array.iteri
            (fun q (oq : Algorithms.Renaming.output) ->
              if p < q && batches.(p) <> batches.(q) then
                assert (op.name_out <> oq.name_out))
            outputs)
        outputs;
      Printf.printf "no two sensors of different batches share a slot.\n";
      (* Same-batch sharing is allowed and does happen under some
         schedules; survey a few seeds. *)
      let shared = ref 0 and runs = 30 in
      for seed = 1 to runs do
        match Core.solve_renaming ~seed ~inputs:batches () with
        | Ok { outputs; _ } ->
            let names =
              Array.to_list (Array.map (fun (o : Algorithms.Renaming.output) -> o.name_out) outputs)
            in
            let distinct = List.sort_uniq compare names in
            if List.length distinct < List.length names then incr shared
        | Error _ -> ()
      done;
      Printf.printf
        "same-batch slot sharing (legal) occurred in %d of %d further runs.\n"
        !shared runs
