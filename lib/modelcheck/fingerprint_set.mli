(** Disk-spillable 64-bit fingerprint visited sets — the TLC-style
    hash-compaction tier that bounds a BFS's visited-set memory by a
    configurable RAM budget instead of by the state count.

    A state is remembered only as the 64-bit FNV-1a fingerprint of its
    canonical key.  Fresh fingerprints land in a fixed-capacity
    open-addressing RAM tier (8 bytes per slot, capacity = budget / 8);
    when the tier reaches 3/4 load it is {e spilled}: the resident
    fingerprints are sorted and written as one immutable run file, and
    the tier is cleared.  Membership is therefore decided in two steps —
    probe the RAM tier, then merge the (sorted) batch of still-unknown
    candidates against every sorted run in one sequential pass per run.
    Batching is what makes the disk tier affordable: the explorers probe
    one BFS layer (up to [batch] states) at a time, so each run is
    streamed once per layer, not once per state.

    Hash compaction is {e lossy}: two distinct states colliding on all 64
    bits makes the second one silently "already visited", omitting its
    subtree.  The standard birthday argument bounds the probability of
    {e any} collision among [n] states by [n^2 / 2^64]; {!omission_bound}
    reports exactly that closed form, and every fingerprint-engine
    summary carries it so a verdict is always qualified by its error
    bound (at 10^6 states the bound is ~5.4e-8; exact engines remain the
    authority wherever they fit in RAM).

    Run files are checksummed ({!Checkpoint.checksum}) and verified on
    {e every} probe pass and on resume; corruption raises
    {!Checkpoint.Corrupt_checkpoint} rather than silently admitting
    states.  The set checkpoints as sections ({!to_sections} /
    {!of_sections}): the RAM tier is serialized, the run files stay on
    disk and are pinned by a manifest of (count, checksum) pairs. *)

type t

val create : ?ram_budget_bytes:int -> ?dir:string -> unit -> t
(** [create ()] is an empty set whose RAM tier holds at most
    [ram_budget_bytes] (default 64 MiB; rounded down to a power-of-two
    slot count, minimum 64 slots).  Spill runs are written under [dir]
    (created if missing); when [dir] is omitted a private directory is
    created under the system temp dir and removed by {!close}. *)

val fingerprint : string -> int64
(** The 64-bit FNV-1a fingerprint of a key, as the engines compute it
    (the all-zero fingerprint is remapped to 1, which the RAM tier
    reserves as its empty marker).  Exposed for tests that plant
    collisions or check the spill format. *)

val add_batch : t -> string array -> bool array
(** [add_batch t keys] decides membership and inserts in one pass:
    result.(i) is [true] iff [keys.(i)]'s fingerprint was not in the set
    before this call and no earlier [keys.(j)] ([j < i]) shares it —
    i.e. exactly the "fresh state" verdicts of a BFS layer.  May spill
    the RAM tier (possibly mid-batch).  Raises
    [Checkpoint.Corrupt_checkpoint] if any run file fails its checksum,
    count or magic check. *)

val cardinal : t -> int
(** Number of distinct fingerprints added so far. *)

val resident : t -> int
(** Fingerprints currently in the RAM tier (diagnostics). *)

val capacity : t -> int
(** RAM-tier slot count (a power of two, fixed at creation). *)

val spilled_runs : t -> int
val spill_bytes : t -> int
(** Total bytes of run files written so far (headers included). *)

val omission_bound : t -> float
(** [cardinal^2 / 2^64] — the birthday-bound probability that at least
    one state was omitted by a fingerprint collision.  Monotone in the
    state count; reported in every fingerprint-engine summary. *)

val to_sections : t -> (string * Bytes.t) list
(** Checkpoint image: sections ["fp_meta"], ["fp_ram"] (the resident
    fingerprints) and ["fp_manifest"] (per-run count + checksum).  Run
    files are {e not} copied — they are immutable once written, so the
    manifest pins them in place. *)

val of_sections : dir:string -> (string * Bytes.t) list -> t
(** Rebuild a set from {!to_sections} sections, with run files expected
    under [dir].  Every manifest entry is verified against its file
    (magic, count, full checksum); any mismatch, truncation or missing
    file raises [Checkpoint.Corrupt_checkpoint]. *)

val close : ?keep_runs:bool -> t -> unit
(** Delete the run files (and the spill directory, when the set created
    it).  [~keep_runs:true] leaves everything on disk — used when a
    governor tripped and a checkpoint still references the runs. *)
