(** The adaptive renaming task (Definition 3.3) with parameter
    [f(M) = M(M+1)/2], and its group version.

    Group version (Section 3.2): within an output sample (one processor per
    group) all names are distinct and, with [M] participating groups, fall
    in [1 .. M(M+1)/2].  Processors of the same group may share a name —
    the paper's resolution of the renaming conundrum — but processors of
    different groups never collide.  {!check_cross_group} validates the
    latter directly over all outputs, which is what Section 6 proves of the
    Figure-4 algorithm. *)

open Repro_util

type output = int

let bound ~groups = groups * (groups + 1) / 2

let check_range (t : output Outcome.t) =
  let m = Iset.cardinal (Outcome.participating_groups t) in
  let b = bound ~groups:m in
  let n = Outcome.processors t in
  let bad =
    List.find_opt
      (fun p ->
        match t.Outcome.outputs.(p) with
        | Some name -> name < 1 || name > b
        | None -> false)
      (List.init n Fun.id)
  in
  match bad with
  | Some p ->
      let name = Option.get t.Outcome.outputs.(p) in
      Task_failure.failf ~processors:[ p ]
        ~groups:[ Outcome.group_of t p ]
        Task_failure.Name_range
        "p%d took name %d outside adaptive range 1..%d (%d groups)" (p + 1)
        name b m
  | None -> Ok ()

let check_sample ~groups:_ sample =
  let rec go = function
    | [] -> Ok ()
    | (g1, n1) :: rest -> (
        match List.find_opt (fun (_, n2) -> n1 = n2) rest with
        | Some (g2, _) ->
            Task_failure.failf ~groups:[ g1; g2 ] Task_failure.Name_uniqueness
              "groups %d and %d share name %d" g1 g2 n1
        | None -> go rest)
  in
  go sample

let check_group_solution t =
  match check_range t with
  | Error _ as e -> e
  | Ok () -> Outcome.for_all_samples t ~check:check_sample

(** Processors of different groups never share a name (all outputs, not
    just samples). *)
let check_cross_group (t : output Outcome.t) =
  let n = Outcome.processors t in
  let rec go p q =
    if p >= n then Ok ()
    else if q >= n then go (p + 1) (p + 2)
    else
      match (t.Outcome.outputs.(p), t.Outcome.outputs.(q)) with
      | Some np, Some nq
        when np = nq && Outcome.group_of t p <> Outcome.group_of t q ->
          Task_failure.failf ~processors:[ p; q ]
            ~groups:[ Outcome.group_of t p; Outcome.group_of t q ]
            Task_failure.Name_uniqueness
            "p%d (group %d) and p%d (group %d) share name %d" (p + 1)
            (Outcome.group_of t p) (q + 1) (Outcome.group_of t q) np
      | _ -> go p (q + 1)
  in
  go 0 1

let check t =
  match check_range t with
  | Error _ as e -> e
  | Ok () -> (
      match check_cross_group t with
      | Error _ as e -> e
      | Ok () -> check_group_solution t)
