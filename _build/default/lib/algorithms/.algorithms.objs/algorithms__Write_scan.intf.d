lib/algorithms/write_scan.mli: Anonmem Fmt Iset Repro_util
