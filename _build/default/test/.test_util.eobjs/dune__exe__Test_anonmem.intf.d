test/test_anonmem.mli:
