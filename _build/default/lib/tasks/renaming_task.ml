(** The adaptive renaming task (Definition 3.3) with parameter
    [f(M) = M(M+1)/2], and its group version.

    Group version (Section 3.2): within an output sample (one processor per
    group) all names are distinct and, with [M] participating groups, fall
    in [1 .. M(M+1)/2].  Processors of the same group may share a name —
    the paper's resolution of the renaming conundrum — but processors of
    different groups never collide.  {!check_cross_group} validates the
    latter directly over all outputs, which is what Section 6 proves of the
    Figure-4 algorithm. *)

open Repro_util

type output = int

let result_errorf fmt = Fmt.kstr (fun s -> Error s) fmt
let bound ~groups = groups * (groups + 1) / 2

let check_range (t : output Outcome.t) =
  let m = Iset.cardinal (Outcome.participating_groups t) in
  let b = bound ~groups:m in
  let bad = List.find_opt (fun name -> name < 1 || name > b) (Outcome.terminated t) in
  match bad with
  | Some name ->
      result_errorf "name %d outside adaptive range 1..%d (%d groups)" name b m
  | None -> Ok ()

let check_sample ~groups:_ sample =
  let rec go = function
    | [] -> Ok ()
    | (g1, n1) :: rest -> (
        match List.find_opt (fun (_, n2) -> n1 = n2) rest with
        | Some (g2, _) ->
            result_errorf "groups %d and %d share name %d" g1 g2 n1
        | None -> go rest)
  in
  go sample

let check_group_solution t =
  match check_range t with
  | Error _ as e -> e
  | Ok () -> Outcome.for_all_samples t ~check:check_sample

(** Processors of different groups never share a name (all outputs, not
    just samples). *)
let check_cross_group (t : output Outcome.t) =
  let n = Outcome.processors t in
  let rec go p q =
    if p >= n then Ok ()
    else if q >= n then go (p + 1) (p + 2)
    else
      match (t.Outcome.outputs.(p), t.Outcome.outputs.(q)) with
      | Some np, Some nq
        when np = nq && Outcome.group_of t p <> Outcome.group_of t q ->
          result_errorf "p%d (group %d) and p%d (group %d) share name %d"
            (p + 1) (Outcome.group_of t p) (q + 1) (Outcome.group_of t q) np
      | _ -> go p (q + 1)
  in
  go 0 1

let check t =
  match check_range t with
  | Error _ as e -> e
  | Ok () -> (
      match check_cross_group t with
      | Error _ as e -> e
      | Ok () -> check_group_solution t)
