(* Differential pinning of the flat int-machines against the boxed
   interpreter.

   For every protocol that ships a {!Anonmem.Protocol.S.flat} machine the
   same case — configuration, wiring, inputs, adversary stream, fault
   plan, step budget — is executed three ways:

   - [flat]: the default path, flat register file when eligible;
   - [boxed]: [Sys.run ~flat:false], the boxed fast interpreter;
   - [traced]: a no-op [on_event] observer, which forces the fully
     traced boxed interpreter.

   All three must agree bit-for-bit on the stop reason, total steps,
   per-processor step counts, outputs, and the final register and local
   states ([last_writer] excluded: the fast paths do not track it).
   This is deliberately stronger than the harness-level differential in
   [test_fuzz]: it compares the synced-back state itself, so a flat
   machine whose [sync] reconstructs a semantically-equal but
   structurally different value fails here, and it covers [write_scan]
   (not a fuzz target) plus the non-default configurations
   ([cfg_eager], [cfg_forgetful], [cfg_majority]). *)

open Repro_util

module Diff (P : Anonmem.Protocol.S with type input = int) = struct
  module Sys = Anonmem.System.Make (P)

  type outcome = {
    stop : Sys.stop_reason;
    steps : int;
    step_counts : int array;
    outputs : P.output option array;
    registers : P.value array;
    locals : P.local array;
  }

  type arm = Flat | Boxed | Traced

  let arm_name = function
    | Flat -> "flat"
    | Boxed -> "boxed"
    | Traced -> "traced"

  (* Everything that determines the execution is re-derived from
     [case_seed], so each arm sees an identical fresh case. *)
  let exec ~arm ~cfg ~case_seed ~n ~m ~profile ~max_steps =
    let rng = Rng.create ~seed:case_seed in
    let wiring = Anonmem.Wiring.random rng ~n ~m in
    let inputs = Fuzzing.Gen.random_inputs rng ~n in
    let shape = Fuzzing.Schedule.random rng ~n ~horizon:max_steps in
    let faults =
      match profile with
      | Fuzzing.Fault_gen.No_faults -> None
      | profile ->
          Some
            (Fuzzing.Fault_gen.random rng ~profile ~n ~m
               ~horizon:(min max_steps (50 * n)))
    in
    let sched =
      Fuzzing.Schedule.scheduler
        (Rng.create ~seed:(case_seed lxor 0x5EED))
        shape
    in
    let state = Sys.init ~cfg ~wiring ~inputs in
    let step_counts = Array.make n 0 in
    let stop, steps =
      match arm with
      | Flat -> Sys.run ~max_steps ?faults ~step_counts ~sched state
      | Boxed ->
          Sys.run ~max_steps ?faults ~step_counts ~flat:false ~sched state
      | Traced ->
          Sys.run ~max_steps ?faults ~step_counts ~sched
            ~on_event:(fun ~time:_ _ -> ())
            state
    in
    {
      stop;
      steps;
      step_counts;
      outputs = Sys.outputs state;
      registers = state.Sys.registers;
      locals = state.Sys.locals;
    }

  let check_agree ~what ~ctx a b =
    let fail field = Alcotest.failf "%s: %s disagree on %s" ctx what field in
    if a.stop <> b.stop then fail "stop reason";
    if a.steps <> b.steps then fail "step total";
    if a.step_counts <> b.step_counts then fail "step counts";
    if a.outputs <> b.outputs then fail "outputs";
    if a.registers <> b.registers then fail "registers";
    if a.locals <> b.locals then fail "locals"

  let case ~name ~cfg_of ~case_seed ~n ~m ~profile ~max_steps =
    let cfg = cfg_of ~n ~m in
    let run arm = exec ~arm ~cfg ~case_seed ~n ~m ~profile ~max_steps in
    let flat = run Flat and boxed = run Boxed and traced = run Traced in
    let ctx =
      Printf.sprintf "%s seed=%d n=%d m=%d faults=%s" name case_seed n m
        (Fuzzing.Fault_gen.name profile)
    in
    check_agree ~what:(arm_name Flat ^ " vs " ^ arm_name Boxed) ~ctx flat
      boxed;
    check_agree ~what:(arm_name Flat ^ " vs " ^ arm_name Traced) ~ctx flat
      traced
end

(* One row of the matrix: a protocol, a configuration builder and a
   register-count rule.  [m_of] keeps rt_mutex on its coprime register
   counts; everything else fuzzes m = n like the paper's algorithms.
   Each entry runs the full seed x size x fault-profile grid for one
   (protocol, cfg) pair. *)
let matrix_entry (type c) ~name
    (module P : Anonmem.Protocol.S with type input = int and type cfg = c)
    ~(cfg_of : n:int -> m:int -> c) ~(m_of : n:int -> int) () =
  let module D = Diff (P) in
  let profiles =
    Fuzzing.Fault_gen.
      [ No_faults; Crash_stop_only; Crash_recover; Omission; Stuck; Stale;
        Mixed ]
  in
  let sizes = [ (2, 400); (3, 600); (6, 1200); (13, 2500); (29, 4000) ] in
  List.iter
    (fun (n, max_steps) ->
      let m = m_of ~n in
      List.iter
        (fun profile ->
          for k = 0 to 3 do
            let case_seed = (Hashtbl.hash (name, n, k) * 7919) + k in
            D.case ~name ~cfg_of ~case_seed ~n ~m ~profile ~max_steps
          done)
        profiles)
    sizes

let m_same ~n = n
let m_mutex ~n = Fuzzing.Targets.portfolio_m ~n

let entries =
  [
    ( "snapshot",
      matrix_entry ~name:"snapshot"
        (module Algorithms.Snapshot)
        ~cfg_of:Algorithms.Snapshot.cfg ~m_of:m_same );
    ( "write_scan",
      matrix_entry ~name:"write_scan"
        (module Algorithms.Write_scan)
        ~cfg_of:Algorithms.Write_scan.cfg ~m_of:m_same );
    ( "double_collect",
      matrix_entry ~name:"double_collect"
        (module Algorithms.Double_collect)
        ~cfg_of:Algorithms.Double_collect.cfg ~m_of:m_same );
    ( "renaming",
      matrix_entry ~name:"renaming"
        (module Algorithms.Renaming)
        ~cfg_of:Algorithms.Renaming.cfg ~m_of:m_same );
    ( "consensus",
      matrix_entry ~name:"consensus"
        (module Algorithms.Consensus)
        ~cfg_of:Algorithms.Consensus.cfg ~m_of:m_same );
    ( "weak_leader",
      matrix_entry ~name:"weak_leader"
        (module Algorithms.Weak_leader)
        ~cfg_of:Algorithms.Weak_leader.cfg ~m_of:m_same );
    ( "weak_leader_majority",
      matrix_entry ~name:"weak_leader_majority"
        (module Algorithms.Weak_leader)
        ~cfg_of:Algorithms.Weak_leader.cfg_majority ~m_of:m_same );
    ( "rt_mutex",
      matrix_entry ~name:"rt_mutex"
        (module Algorithms.Rt_mutex)
        ~cfg_of:Algorithms.Rt_mutex.cfg ~m_of:m_mutex );
    ( "rt_mutex_eager",
      matrix_entry ~name:"rt_mutex_eager"
        (module Algorithms.Rt_mutex)
        ~cfg_of:Algorithms.Rt_mutex.cfg_eager ~m_of:m_mutex );
    ( "naming",
      matrix_entry ~name:"naming"
        (module Algorithms.Naming)
        ~cfg_of:Algorithms.Naming.cfg ~m_of:m_same );
    ( "naming_forgetful",
      matrix_entry ~name:"naming_forgetful"
        (module Algorithms.Naming)
        ~cfg_of:Algorithms.Naming.cfg_forgetful ~m_of:m_same );
  ]

(* A QCheck property on top of the fixed grid: random seeds and sizes
   through the snapshot machine (the benchmark's gated protocol), so CI
   explores beyond the deterministic matrix. *)
let prop_snapshot_random =
  let module D = Diff (Algorithms.Snapshot) in
  QCheck.Test.make ~name:"flat/boxed/traced agree on random snapshot cases"
    ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_range 2 30))
    (fun (case_seed, n) ->
      List.iter
        (fun profile ->
          D.case ~name:"snapshot(qcheck)" ~cfg_of:Algorithms.Snapshot.cfg
            ~case_seed ~n ~m:n ~profile ~max_steps:1500)
        Fuzzing.Fault_gen.[ No_faults; Mixed ];
      true)

let prop_rt_mutex_random =
  let module D = Diff (Algorithms.Rt_mutex) in
  QCheck.Test.make
    ~name:"flat/boxed/traced agree on random rt_mutex cases (total machine)"
    ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_range 2 20))
    (fun (case_seed, n) ->
      List.iter
        (fun profile ->
          D.case ~name:"rt_mutex(qcheck)" ~cfg_of:Algorithms.Rt_mutex.cfg
            ~case_seed ~n ~m:(m_mutex ~n) ~profile ~max_steps:1500)
        Fuzzing.Fault_gen.[ No_faults; Stuck; Stale; Mixed ];
      true)

let () =
  Alcotest.run "flat_diff"
    [
      ( "matrix",
        List.map
          (fun (name, body) -> Alcotest.test_case name `Quick body)
          entries );
      ( "qcheck",
        [
          QCheck_alcotest.to_alcotest prop_snapshot_random;
          QCheck_alcotest.to_alcotest prop_rt_mutex_random;
        ] );
    ]
