(* Durability suite: checkpoint/resume, run journals, resource governors.

   The property that matters end-to-end is crash-equivalence: a verification
   run that is killed at an arbitrary point and resumed must produce results
   identical to an uninterrupted run — same verdicts, same state counts,
   byte-identical feasibility JSON.  The tests below drive that property at
   every layer: the checkpoint container (torn writes must preserve the
   previous image), the journal (torn tails must heal), the State_table
   serialization (QCheck round-trips + corruption refusal), each engine
   (BFS, DFS, fault, packed — interrupted by a deterministic quota governor
   and resumed to exact parity), the mutex sweep in [Core], and the
   feasibility map with crash points fuzzed across every journal append. *)

module Ckpt = Modelcheck.Checkpoint
module Gov = Modelcheck.Governor
module St = Modelcheck.State_table
module Pv = Modelcheck.State_table.Packed_vec
module J = Runtime_shm.Journal
module F = Analysis.Feasibility

let qcheck_count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> int_of_string s
  | None -> 200

(* A fresh path that does not exist yet (temp_file creates the file, and
   an existing-but-empty checkpoint must be rejected, not resumed). *)
let fresh_path suffix =
  let f = Filename.temp_file "durability" suffix in
  Sys.remove f;
  f

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Checkpoint container                                                *)
(* ------------------------------------------------------------------ *)

let sections_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (t1, p1) (t2, p2) -> t1 = t2 && Bytes.equal p1 p2)
       a b

let sample_sections () =
  [
    ("context", Bytes.of_string "bfs|21|w|false");
    ("table", Bytes.of_string (String.init 257 (fun i -> Char.chr (i land 0xff))));
    ("counters", Ckpt.bytes_of_ints [| 7; 0; max_int; 42 |]);
    ("empty", Bytes.create 0);
  ]

let test_ckpt_roundtrip () =
  let s = sample_sections () in
  Alcotest.(check bool)
    "to_bytes/of_bytes round-trip" true
    (sections_equal s (Ckpt.of_bytes (Ckpt.to_bytes s)));
  let path = fresh_path ".ckpt" in
  Ckpt.save ~path s;
  Alcotest.(check bool)
    "save/load round-trip" true
    (sections_equal s (Ckpt.load ~path));
  Alcotest.(check bool)
    "no tmp litter" false
    (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

let expect_corrupt f =
  match f () with
  | exception Ckpt.Corrupt_checkpoint _ -> ()
  | _ -> Alcotest.fail "expected Corrupt_checkpoint"

let test_ckpt_corruption () =
  let path = fresh_path ".ckpt" in
  Ckpt.save ~path (sample_sections ());
  let img = read_file path in
  (* flip one payload byte *)
  let flipped = Bytes.of_string img in
  let off = String.length img - 3 in
  Bytes.set flipped off (Char.chr (Char.code (Bytes.get flipped off) lxor 0x40));
  write_file path (Bytes.to_string flipped);
  expect_corrupt (fun () -> Ckpt.load ~path);
  (* truncate at every boundary class: header, mid-section, mid-payload *)
  List.iter
    (fun keep ->
      write_file path (String.sub img 0 keep);
      expect_corrupt (fun () -> Ckpt.load ~path))
    [ 0; 4; 11; String.length img / 2; String.length img - 1 ];
  (* bad magic *)
  write_file path ("XXXXXXXX" ^ String.sub img 8 (String.length img - 8));
  expect_corrupt (fun () -> Ckpt.load ~path);
  Sys.remove path;
  expect_corrupt (fun () -> Ckpt.find "absent" (sample_sections ()));
  expect_corrupt (fun () -> Ckpt.ints_of_bytes (Bytes.create 7))

let test_ckpt_torn_write_preserves_old () =
  let path = fresh_path ".ckpt" in
  let v1 = [ ("gen", Ckpt.bytes_of_ints [| 1 |]) ] in
  let v2 = [ ("gen", Ckpt.bytes_of_ints [| 2 |]) ] in
  Ckpt.save ~path v1;
  Ckpt.set_torn_write (Some 6);
  (match Ckpt.save ~path v2 with
  | exception Ckpt.Simulated_crash -> ()
  | () -> Alcotest.fail "armed torn write must raise");
  Alcotest.(check bool)
    "previous checkpoint intact" true
    (sections_equal v1 (Ckpt.load ~path));
  (* the hook disarms itself: the retry succeeds *)
  Ckpt.save ~path v2;
  Alcotest.(check bool)
    "retry lands v2" true
    (sections_equal v2 (Ckpt.load ~path));
  Sys.remove path

let test_ints_roundtrip () =
  let a = [| 0; 1; 255; 65_536; max_int; 4_611_686_018_427_387_903 |] in
  Alcotest.(check (array int))
    "bytes_of_ints round-trip" a
    (Ckpt.ints_of_bytes (Ckpt.bytes_of_ints a))

(* ------------------------------------------------------------------ *)
(* Governor                                                            *)
(* ------------------------------------------------------------------ *)

let reason = Alcotest.testable Gov.pp_reason ( = )

let test_governor_quota () =
  let g = Gov.create ~quota:5 () in
  for i = 1 to 5 do
    Alcotest.(check (option reason))
      (Printf.sprintf "tick %d within quota" i)
      None (Gov.tick g)
  done;
  Alcotest.(check (option reason)) "tick 6 trips" (Some Gov.Quota) (Gov.tick g);
  Alcotest.(check (option reason)) "sticky" (Some Gov.Quota) (Gov.tick g);
  Alcotest.(check (option reason)) "tripped" (Some Gov.Quota) (Gov.tripped g);
  Gov.dispose g

let test_governor_wall_zero () =
  let g = Gov.create ~wall_seconds:0.0 () in
  Alcotest.(check (option reason))
    "zero wall budget trips on first tick" (Some Gov.Wall_clock) (Gov.tick g);
  Gov.dispose g

let test_governor_interrupt_shared () =
  let flag = ref false in
  let g1 = Gov.create ~interrupted_flag:flag () in
  let g2 = Gov.create ~interrupted_flag:flag () in
  Alcotest.(check (option reason)) "g1 clean" None (Gov.tick g1);
  flag := true;
  Alcotest.(check (option reason))
    "g1 interrupted" (Some Gov.Interrupted) (Gov.tick g1);
  Alcotest.(check (option reason))
    "g2 shares the flag" (Some Gov.Interrupted) (Gov.tick g2);
  Alcotest.(check bool) "interrupted observable" true (Gov.interrupted g1);
  Gov.dispose g1;
  Gov.dispose g2;
  let g3 = Gov.create () in
  Gov.interrupt g3;
  Alcotest.(check (option reason))
    "private interrupt" (Some Gov.Interrupted) (Gov.tick g3);
  Gov.dispose g3

let test_reason_strings () =
  List.iter
    (fun r ->
      Alcotest.(check (option reason))
        (Gov.reason_to_string r) (Some r)
        (Gov.reason_of_string (Gov.reason_to_string r)))
    [ Gov.Wall_clock; Gov.Heap; Gov.Quota; Gov.Interrupted ];
  Alcotest.(check (option reason))
    "unknown string" None
    (Gov.reason_of_string "bogus")

(* ------------------------------------------------------------------ *)
(* State_table / Packed_vec serialization (satellite 3)                *)
(* ------------------------------------------------------------------ *)

let gen_key w = QCheck.Gen.(string_size ~gen:(char_range 'a' 'd') (return w))

let table_scenario =
  QCheck.make
    ~print:(fun (w, keys) ->
      Printf.sprintf "width=%d keys=[%s]" w (String.concat ";" keys))
    QCheck.Gen.(
      1 -- 8 >>= fun w ->
      list_size (0 -- 300) (gen_key w) >>= fun keys -> return (w, keys))

let table_roundtrip =
  QCheck.Test.make ~count:qcheck_count ~name:"State_table serialize round-trip"
    table_scenario (fun (w, keys) ->
      let t = St.create ~log2_slots:0 ~key_width:w () in
      List.iter (fun k -> ignore (St.intern t k)) keys;
      let t' = St.deserialize (St.serialize t) in
      St.length t' = St.length t
      && St.key_width t' = St.key_width t
      && List.for_all (fun k -> St.find t' k = St.find t k) keys
      && (St.length t = 0
         ||
         let ok = ref true in
         St.iter (fun id k -> ok := !ok && St.key_of_id t id = k) t';
         (* and interning continues where it left off *)
         let fresh = String.make w 'z' in
         !ok && St.intern t' fresh = St.length t)
      )

let test_table_corruption () =
  let t = St.create ~key_width:3 () in
  List.iter (fun k -> ignore (St.intern t k)) [ "abc"; "abd"; "xyz" ];
  let img = St.serialize t in
  (* flip one arena byte (past the 32-byte header) *)
  let bad = Bytes.copy img in
  Bytes.set bad 33 (Char.chr (Char.code (Bytes.get bad 33) lxor 1));
  expect_corrupt (fun () -> St.deserialize bad);
  (* torn image: every strict prefix must be refused *)
  List.iter
    (fun keep -> expect_corrupt (fun () -> St.deserialize (Bytes.sub img 0 keep)))
    [ 0; 8; 31; Bytes.length img - 1 ];
  (* bad magic *)
  let bad = Bytes.copy img in
  Bytes.set bad 0 '?';
  expect_corrupt (fun () -> St.deserialize bad)

let vec_scenario =
  QCheck.make
    ~print:(fun (stride, vals) ->
      Printf.sprintf "stride=%d n=%d" stride (List.length vals))
    QCheck.Gen.(
      1 -- 7 >>= fun stride ->
      let bound = (1 lsl (8 * min stride 7)) - 1 in
      list_size (0 -- 200) (0 -- min bound 1_000_000_000) >>= fun vals ->
      return (stride, vals))

let vec_roundtrip =
  QCheck.Test.make ~count:qcheck_count ~name:"Packed_vec serialize round-trip"
    vec_scenario (fun (stride, vals) ->
      let v = Pv.create ~stride () in
      List.iter (fun x -> ignore (Pv.push v x)) vals;
      let v' = Pv.deserialize (Pv.serialize v) in
      Pv.length v' = Pv.length v
      && Pv.stride v' = stride
      && List.for_all2
           (fun i x -> Pv.get v' i = x)
           (List.mapi (fun i _ -> i) vals)
           vals)

let test_vec_corruption () =
  let v = Pv.create ~stride:3 () in
  List.iter (fun x -> ignore (Pv.push v x)) [ 1; 500; 70_000 ];
  let img = Pv.serialize v in
  let bad = Bytes.copy img in
  let off = Bytes.length img - 1 in
  Bytes.set bad off (Char.chr (Char.code (Bytes.get bad off) lxor 0x10));
  expect_corrupt (fun () -> Pv.deserialize bad);
  expect_corrupt (fun () -> Pv.deserialize (Bytes.sub img 0 (Bytes.length img - 2)))

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let test_journal_roundtrip () =
  let path = fresh_path ".journal" in
  let jnl = J.create path in
  let payloads =
    [ "mutex 2 3 solved 5 1000"; "with \"quotes\" and \\ backslash"; "" ]
  in
  List.iter (J.append jnl) payloads;
  J.close jnl;
  Alcotest.(check (list string)) "load round-trip" payloads (J.load path);
  let jnl, recovered = J.open_append path in
  Alcotest.(check (list string)) "open_append recovers" payloads recovered;
  J.append jnl "leader 2 2 solved 2 213";
  J.close jnl;
  Alcotest.(check (list string))
    "append after reopen" (payloads @ [ "leader 2 2 solved 2 213" ])
    (J.load path);
  Alcotest.check_raises "newline rejected"
    (Invalid_argument "Journal.append: payload contains a newline")
    (fun () -> J.append (J.create path) "a\nb");
  Sys.remove path

let test_journal_torn_tail () =
  let path = fresh_path ".journal" in
  let jnl = J.create path in
  J.append jnl "cell one";
  J.append jnl "cell two";
  J.close jnl;
  (* simulate a crash mid-append: half a line at the tail *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"seq\": 2, \"crc\": 123";
  close_out oc;
  Alcotest.(check (list string))
    "torn tail dropped" [ "cell one"; "cell two" ] (J.load path);
  let jnl, recovered = J.open_append path in
  Alcotest.(check (list string))
    "heal keeps valid prefix" [ "cell one"; "cell two" ] recovered;
  J.append jnl "cell three";
  J.close jnl;
  Alcotest.(check (list string))
    "healed file appends cleanly"
    [ "cell one"; "cell two"; "cell three" ]
    (J.load path);
  (* a corrupted middle line truncates the valid prefix there *)
  let lines = String.split_on_char '\n' (read_file path) in
  let mangled =
    List.mapi
      (fun i l ->
        if i = 1 then String.map (function '2' -> '3' | c -> c) l else l)
      lines
  in
  write_file path (String.concat "\n" mangled);
  Alcotest.(check (list string))
    "damage cuts the prefix" [ "cell one" ] (J.load path);
  Sys.remove path

let test_journal_crash_hook () =
  let path = fresh_path ".journal" in
  J.set_crash_after (Some 2);
  let jnl = J.create path in
  J.append jnl "first";
  (match J.append jnl "second" with
  | exception J.Simulated_crash -> ()
  | () -> Alcotest.fail "armed journal append must crash");
  Alcotest.(check (list string))
    "torn line invisible" [ "first" ] (J.load path);
  (* recovery heals and the hook stays disarmed *)
  let jnl, recovered = J.open_append path in
  Alcotest.(check (list string)) "recovered" [ "first" ] recovered;
  J.append jnl "second";
  J.close jnl;
  Alcotest.(check (list string)) "redo lands" [ "first"; "second" ] (J.load path);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Feasibility cell codec                                              *)
(* ------------------------------------------------------------------ *)

let test_cell_codec () =
  let grids = F.grids ~quick:true () in
  let floor_of, coprime_of = F.grid_params grids in
  let statuses =
    [
      F.Solved { wirings = 5; states = 123_456 };
      F.Safety_broken "p1 and p2 both acquired name 3";
      F.Deadlock "processors p1, p2 spin forever";
      F.Limit 100_000;
      F.Unknown { reason = "wall-clock"; states = 42; checkpoint = None };
      F.Unknown
        {
          reason = "quota";
          states = 7;
          checkpoint = Some "/tmp/ck/mutex-2-3.ckpt";
        };
    ]
  in
  List.iter
    (fun status ->
      let c =
        {
          F.task = "mutex";
          n = 2;
          m = 3;
          expectation = F.Clean;
          status;
        }
      in
      match F.cell_of_record ~floor_of ~coprime_of (F.cell_to_record c) with
      | None -> Alcotest.failf "codec lost %s" (F.cell_to_record c)
      | Some c' ->
          Alcotest.(check string)
            ("codec round-trip: " ^ F.status_keyword status)
            (F.cell_to_record c) (F.cell_to_record c');
          Alcotest.(check bool)
            "expectation re-derived" true
            (c'.F.expectation = c.F.expectation))
    statuses;
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        ("rejects: " ^ bad) true
        (F.cell_of_record ~floor_of ~coprime_of bad = None))
    [ ""; "mutex"; "mutex x 3 solved 1 2"; "mutex 2 3 nonsense"; "mutex 2 3 solved 1" ]

(* ------------------------------------------------------------------ *)
(* Engine kill-and-resume parity                                       *)
(* ------------------------------------------------------------------ *)

(* Drive an engine closure to completion through repeated small-quota
   interruptions, resuming from its checkpoint each round.  [step] gets a
   fresh governor and must return [Ok v] on completion and [Error ()] on
   exhaustion.  The quota makes interruption points deterministic and
   scattered across the whole exploration. *)
let drive ~quota step =
  let rec go rounds =
    if rounds > 10_000 then Alcotest.fail "resume loop did not converge"
    else
      let g = Gov.create ~quota () in
      let r = step g in
      Gov.dispose g;
      match r with Ok v -> (v, rounds) | Error () -> go (rounds + 1)
  in
  go 0

module Snap_mc = Modelcheck.Explorer.Make (Modelcheck.Codecs.Snapshot)

let test_bfs_resume_parity () =
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let reference =
    match Snap_mc.explore ~cfg ~wiring ~inputs () with
    | Snap_mc.Explored sp ->
        (Snap_mc.state_count sp, Snap_mc.transition_count sp,
         List.length sp.Snap_mc.terminal)
    | _ -> Alcotest.fail "reference run must complete"
  in
  let path = fresh_path ".ckpt" in
  let ckpt = { Ckpt.path; every_states = 25 } in
  let (result, rounds) =
    drive ~quota:60 (fun g ->
        match
          Snap_mc.explore ~governor:g ~ckpt ~resume:true ~cfg ~wiring ~inputs ()
        with
        | Snap_mc.Explored sp ->
            Ok
              (Snap_mc.state_count sp, Snap_mc.transition_count sp,
               List.length sp.Snap_mc.terminal)
        | Snap_mc.Exhausted _ -> Error ()
        | _ -> Alcotest.fail "unexpected BFS verdict")
  in
  Alcotest.(check bool) "BFS was actually interrupted" true (rounds > 0);
  Alcotest.(check (triple int int int))
    "BFS resume parity" reference result;
  if Sys.file_exists path then Sys.remove path

let test_dfs_resume_parity () =
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let reference =
    match Snap_mc.check_exhaustive ~cfg ~wiring ~inputs () with
    | Snap_mc.Dfs_ok s ->
        (s.Snap_mc.dfs_states, s.Snap_mc.dfs_transitions, s.Snap_mc.dfs_terminals)
    | _ -> Alcotest.fail "reference DFS must complete"
  in
  let path = fresh_path ".ckpt" in
  let ckpt = { Ckpt.path; every_states = 25 } in
  let (result, rounds) =
    drive ~quota:60 (fun g ->
        match
          Snap_mc.check_exhaustive ~governor:g ~ckpt ~resume:true ~cfg ~wiring
            ~inputs ()
        with
        | Snap_mc.Dfs_ok s ->
            Ok
              (s.Snap_mc.dfs_states, s.Snap_mc.dfs_transitions,
               s.Snap_mc.dfs_terminals)
        | Snap_mc.Dfs_exhausted _ -> Error ()
        | _ -> Alcotest.fail "unexpected DFS verdict")
  in
  Alcotest.(check bool) "DFS was actually interrupted" true (rounds > 0);
  Alcotest.(check (triple int int int)) "DFS resume parity" reference result;
  if Sys.file_exists path then Sys.remove path

(* The fingerprint engine's checkpoints carry the RAM tier, the spill-run
   manifest and the frontier halves; spill runs live next to the
   checkpoint.  An interrupted-and-resumed run must agree with an
   uninterrupted run on every deterministic field — states, transitions,
   terminals and the omission bound.  The spill *layout* (run count and
   bytes) is not deterministic across interrupt patterns: each resume
   re-batches the frontier, so only engagement of the disk path is
   asserted, not its shape. *)

let rm_rf_runs dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_fp_resume_parity () =
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let deterministic (s : Snap_mc.fp_stats) =
    ( (s.Snap_mc.fp_states, s.Snap_mc.fp_transitions, s.Snap_mc.fp_terminals),
      s.Snap_mc.fp_bound )
  in
  let reference =
    match
      Snap_mc.explore_fp ~ram_budget_bytes:1024 ~batch_states:32 ~cfg ~wiring
        ~inputs ()
    with
    | Snap_mc.Fp_explored s ->
        Alcotest.(check bool)
          "reference run spilled" true
          (s.Snap_mc.fp_runs > 0);
        deterministic s
    | _ -> Alcotest.fail "reference fp run must complete"
  in
  let path = fresh_path ".ckpt" in
  let ckpt = { Ckpt.path; every_states = 25 } in
  let (result, rounds) =
    drive ~quota:60 (fun g ->
        match
          Snap_mc.explore_fp ~governor:g ~ckpt ~resume:true
            ~ram_budget_bytes:1024 ~batch_states:32 ~cfg ~wiring ~inputs ()
        with
        | Snap_mc.Fp_explored s ->
            Alcotest.(check bool)
              "resumed run used the disk path" true
              (s.Snap_mc.fp_runs > 0);
            Ok (deterministic s)
        | Snap_mc.Fp_exhausted _ -> Error ()
        | _ -> Alcotest.fail "unexpected fp verdict")
  in
  Alcotest.(check bool) "fp was actually interrupted" true (rounds > 0);
  Alcotest.(check (pair (triple int int int) (float 0.)))
    "fp resume parity (deterministic fields)" reference result;
  if Sys.file_exists path then Sys.remove path;
  rm_rf_runs (path ^ ".runs")

let test_fp_corrupt_run_refused () =
  (* Spill runs are pinned by the checkpoint manifest and re-verified on
     every resume: a flipped payload byte or a truncated tail must raise
     Corrupt_checkpoint, and restoring the original bytes must let the
     very same resume complete. *)
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let path = fresh_path ".ckpt" in
  let runs_dir = path ^ ".runs" in
  let ckpt = { Ckpt.path; every_states = 25 } in
  let g = Gov.create ~quota:400 () in
  (match
     Snap_mc.explore_fp ~governor:g ~ckpt ~ram_budget_bytes:1024
       ~batch_states:32 ~cfg ~wiring ~inputs ()
   with
  | Snap_mc.Fp_exhausted _ -> ()
  | _ -> Alcotest.fail "quota 400 must interrupt the 2827-state space");
  Gov.dispose g;
  let run0 = Filename.concat runs_dir "run-0.fpr" in
  Alcotest.(check bool) "a spill run exists on disk" true (Sys.file_exists run0);
  let img = read_file run0 in
  let resume () =
    ignore
      (Snap_mc.explore_fp ~ckpt ~resume:true ~ram_budget_bytes:1024
         ~batch_states:32 ~cfg ~wiring ~inputs ())
  in
  (* flip one payload byte (the header is 16 bytes) *)
  let flipped = Bytes.of_string img in
  Bytes.set flipped 20 (Char.chr (Char.code (Bytes.get flipped 20) lxor 0x01));
  write_file run0 (Bytes.to_string flipped);
  expect_corrupt resume;
  (* truncated tail *)
  write_file run0 (String.sub img 0 (String.length img - 8));
  expect_corrupt resume;
  (* restored bytes: the same resume runs to completion *)
  write_file run0 img;
  (match
     Snap_mc.explore_fp ~ckpt ~resume:true ~ram_budget_bytes:1024
       ~batch_states:32 ~cfg ~wiring ~inputs ()
   with
  | Snap_mc.Fp_explored _ -> ()
  | _ -> Alcotest.fail "restored run must resume to completion");
  if Sys.file_exists path then Sys.remove path;
  rm_rf_runs runs_dir

let test_fp_sweep_resume_parity () =
  (* Sweep-level: the accumulated fp summary (including the float
     omission bound, which travels as two 32-bit halves of its IEEE
     image) must survive any number of quota interruptions bitwise. *)
  let reference =
    match Core.verify_snapshot_model_fp ~n:2 ~ram_budget_bytes:1024 () with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let path = fresh_path ".ckpt" in
  let ckpt = { Ckpt.path; every_states = 25 } in
  let (result, rounds) =
    drive ~quota:150 (fun g ->
        match
          Core.verify_snapshot_model_fp ~n:2 ~ram_budget_bytes:1024 ~governor:g
            ~ckpt ~resume:true ()
        with
        | Ok s -> Ok s
        | Error e ->
            if String.length e >= 9 && String.sub e 0 9 = "exhausted" then
              Error ()
            else Alcotest.fail e)
  in
  let module X = Modelcheck.Explorer in
  Alcotest.(check bool) "fp sweep was actually interrupted" true (rounds > 0);
  Alcotest.(check int) "wirings" reference.X.fp_wirings result.X.fp_wirings;
  Alcotest.(check int) "states" reference.X.fp_total_states
    result.X.fp_total_states;
  Alcotest.(check int) "transitions" reference.X.fp_total_transitions
    result.X.fp_total_transitions;
  Alcotest.(check int) "terminals" reference.X.fp_terminal_states
    result.X.fp_terminal_states;
  Alcotest.(check (float 0.))
    "omission bound survives the float codec" reference.X.fp_omission_bound
    result.X.fp_omission_bound;
  if Sys.file_exists path then Sys.remove path;
  rm_rf_runs (path ^ ".runs")

module Snap_fault = Modelcheck.Fault_explorer.Make (Modelcheck.Codecs.Snapshot)

let test_fault_resume_parity () =
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let invariant _ = Ok () in
  let reference =
    match Snap_fault.explore ~max_crashes:1 ~invariant ~cfg ~wiring ~inputs () with
    | Snap_fault.Safe s ->
        (s.Snap_fault.states, s.Snap_fault.transitions, s.Snap_fault.crash_branches)
    | _ -> Alcotest.fail "reference fault run must complete"
  in
  let path = fresh_path ".ckpt" in
  let ckpt = { Ckpt.path; every_states = 40 } in
  let (result, rounds) =
    drive ~quota:100 (fun g ->
        match
          Snap_fault.explore ~max_crashes:1 ~governor:g ~ckpt ~resume:true
            ~invariant ~cfg ~wiring ~inputs ()
        with
        | Snap_fault.Safe s ->
            Ok
              (s.Snap_fault.states, s.Snap_fault.transitions,
               s.Snap_fault.crash_branches)
        | Snap_fault.Exhausted _ -> Error ()
        | _ -> Alcotest.fail "unexpected fault verdict")
  in
  Alcotest.(check bool) "fault run was actually interrupted" true (rounds > 0);
  Alcotest.(check (triple int int int)) "fault resume parity" reference result;
  if Sys.file_exists path then Sys.remove path

module Packed = Modelcheck.Rt_mutex_packed

let packed_drive ~cfg ~wiring ~inputs ~quota ~path =
  let ckpt = { Ckpt.path; every_states = 50 } in
  drive ~quota (fun g ->
      match
        Packed.check_wiring ~governor:g ~ckpt ~resume:true ~cfg ~wiring ~inputs
          ()
      with
      | Packed.Exhausted _ -> Error ()
      | v -> Ok v)

let test_packed_resume_clean_parity () =
  let cfg = Algorithms.Rt_mutex.cfg ~n:2 ~m:3 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:3 in
  let inputs = [| 1; 2 |] in
  let reference =
    match Packed.check_wiring ~cfg ~wiring ~inputs () with
    | Packed.Clean { states; _ } -> states
    | _ -> Alcotest.fail "reference packed (2,3) must be clean"
  in
  let path = fresh_path ".ckpt" in
  let (v, rounds) = packed_drive ~cfg ~wiring ~inputs ~quota:150 ~path in
  Alcotest.(check bool) "packed was actually interrupted" true (rounds > 0);
  (match v with
  | Packed.Clean { states; _ } ->
      Alcotest.(check int) "packed clean state parity" reference states
  | _ -> Alcotest.fail "resumed packed (2,3) must be clean");
  if Sys.file_exists path then Sys.remove path

let test_packed_resume_cycle_parity () =
  (* (2,2) is non-coprime: the verdict must survive interruption too *)
  let cfg = Algorithms.Rt_mutex.cfg ~n:2 ~m:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  let inputs = [| 1; 2 |] in
  let reference = Packed.check_wiring ~cfg ~wiring ~inputs () in
  (match reference with
  | Packed.Fair_cycle -> ()
  | _ -> Alcotest.fail "reference packed (2,2) must deadlock");
  let path = fresh_path ".ckpt" in
  let (v, _) = packed_drive ~cfg ~wiring ~inputs ~quota:40 ~path in
  (match v with
  | Packed.Fair_cycle -> ()
  | _ -> Alcotest.fail "resumed packed (2,2) must still deadlock");
  if Sys.file_exists path then Sys.remove path

let test_verify_mutex_sweep_resume () =
  let reference =
    match Core.verify_mutex ~n:2 ~m:3 ~packed:true () with
    | Core.Verified { wirings; states } -> (wirings, states)
    | v -> Alcotest.failf "reference sweep: %s" (Fmt.str "%a" Core.pp_verdict v)
  in
  let path = fresh_path ".ckpt" in
  let ckpt = { Ckpt.path; every_states = 100 } in
  let saw_checkpoint_path = ref false in
  let rec go rounds =
    if rounds > 10_000 then Alcotest.fail "sweep resume did not converge"
    else
      let g = Gov.create ~quota:400 () in
      let v =
        Core.verify_mutex ~n:2 ~m:3 ~packed:true ~governor:g ~ckpt ~resume:true
          ()
      in
      Gov.dispose g;
      match v with
      | Core.Verified { wirings; states } -> ((wirings, states), rounds)
      | Core.Exhausted { checkpoint; _ } ->
          if checkpoint = Some path then saw_checkpoint_path := true;
          go (rounds + 1)
      | v -> Alcotest.failf "sweep: %s" (Fmt.str "%a" Core.pp_verdict v)
  in
  let (result, rounds) = go 0 in
  Alcotest.(check bool) "sweep was actually interrupted" true (rounds > 0);
  Alcotest.(check bool)
    "exhausted verdicts name the checkpoint" true !saw_checkpoint_path;
  Alcotest.(check (pair int int))
    "verify_mutex sweep resume parity" reference result;
  if Sys.file_exists path then Sys.remove path

(* ------------------------------------------------------------------ *)
(* Map-level crash-resume differential                                 *)
(* ------------------------------------------------------------------ *)

(* A deterministic stand-in checker covering every status shape the
   journal must carry (Limit is non-final, so resumed runs recompute it —
   determinism keeps the final map identical either way). *)
let stub ~task ~n ~m =
  match (String.length task + n + m) mod 4 with
  | 0 -> F.Solved { wirings = n * m; states = (n * 100) + m }
  | 1 -> F.Safety_broken (Printf.sprintf "%s breaks at %d %d" task n m)
  | 2 -> F.Deadlock "spin"
  | _ -> F.Limit (n + m)

let run_map_with_journal path =
  let grids = F.grids ~quick:true () in
  let floor_of, coprime_of = F.grid_params grids in
  let jnl, recovered = J.open_append path in
  let cached_cells =
    List.filter_map (F.cell_of_record ~floor_of ~coprime_of) recovered
    |> List.filter (fun c -> F.status_final c.F.status)
  in
  let cached ~task ~n ~m =
    List.find_map
      (fun c ->
        if c.F.task = task && c.F.n = n && c.F.m = m then Some c.F.status
        else None)
      cached_cells
  in
  let cells =
    F.run ~cached
      ~on_fresh:(fun c -> J.append jnl (F.cell_to_record c))
      ~check:stub grids
  in
  J.close jnl;
  (cells, List.length cached_cells)

let test_map_crash_resume_identical () =
  let grids = F.grids ~quick:true () in
  let total = List.length (List.concat_map (fun g -> g.F.g_cells) grids) in
  let reference = F.to_json (F.run ~check:stub grids) in
  (* kill at every journal append point, then resume: the final JSON must
     be byte-identical to the uninterrupted run every time *)
  for kill_at = 1 to total do
    let path = fresh_path ".journal" in
    J.set_crash_after (Some kill_at);
    (match run_map_with_journal path with
    | exception J.Simulated_crash -> ()
    | _ -> Alcotest.failf "kill point %d did not fire" kill_at);
    J.set_crash_after None;
    let cells, replayed = run_map_with_journal path in
    Alcotest.(check bool)
      (Printf.sprintf "kill %d: resume replayed journal cells" kill_at)
      true
      (replayed <= kill_at - 1);
    Alcotest.(check string)
      (Printf.sprintf "kill %d: resumed map byte-identical" kill_at)
      reference (F.to_json cells);
    Sys.remove path
  done

let test_map_stop_skips_remaining () =
  let grids = F.grids ~quick:true () in
  let count = ref 0 in
  let cells =
    F.run
      ~stop:(fun () -> !count >= 3)
      ~on_cell:(fun _ -> incr count)
      ~check:stub grids
  in
  Alcotest.(check int) "stopped after 3 cells" 3 (List.length cells)

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let test_supervisor_restart_backoff () =
  let ckpt = fresh_path ".ckpt" in
  let sleeps = ref [] in
  let attempts = ref 0 in
  let outcome =
    Runtime_shm.Supervisor.supervise ~max_restarts:3 ~backoff_s:0.5
      ~sleep:(fun s -> sleeps := s :: !sleeps)
      ~checkpoint:ckpt
      (fun ~resume_from ->
        incr attempts;
        match !attempts with
        | 1 ->
            Alcotest.(check (option string)) "first run fresh" None resume_from;
            write_file ckpt "progress";
            failwith "crash one"
        | 2 ->
            Alcotest.(check (option string))
              "restart sees the checkpoint" (Some ckpt) resume_from;
            failwith "crash two"
        | _ ->
            Alcotest.(check (option string))
              "third run still resumes" (Some ckpt) resume_from;
            "done")
  in
  (match outcome with
  | Runtime_shm.Supervisor.Completed { value; restarts } ->
      Alcotest.(check string) "value" "done" value;
      Alcotest.(check int) "restarts" 2 restarts
  | Runtime_shm.Supervisor.Gave_up _ -> Alcotest.fail "must complete");
  Alcotest.(check (list (float 1e-9)))
    "exponential backoff schedule" [ 0.5; 1.0 ] (List.rev !sleeps);
  Sys.remove ckpt

let test_supervisor_gives_up () =
  let sleeps = ref 0 in
  let outcome =
    Runtime_shm.Supervisor.supervise ~max_restarts:2 ~backoff_s:0.1
      ~sleep:(fun _ -> incr sleeps)
      ~checkpoint:(fresh_path ".ckpt")
      (fun ~resume_from:_ -> failwith "always down")
  in
  (match outcome with
  | Runtime_shm.Supervisor.Gave_up { restarts; last_error } ->
      Alcotest.(check int) "exhausted restart budget" 2 restarts;
      Alcotest.(check bool)
        "error preserved" true
        (String.length last_error > 0)
  | Runtime_shm.Supervisor.Completed _ -> Alcotest.fail "cannot complete");
  Alcotest.(check int) "one sleep per restart" 2 !sleeps

let () =
  Alcotest.run "durability"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick test_ckpt_roundtrip;
          Alcotest.test_case "corruption refused" `Quick test_ckpt_corruption;
          Alcotest.test_case "torn write preserves previous" `Quick
            test_ckpt_torn_write_preserves_old;
          Alcotest.test_case "int codec" `Quick test_ints_roundtrip;
        ] );
      ( "governor",
        [
          Alcotest.test_case "quota is exact and sticky" `Quick
            test_governor_quota;
          Alcotest.test_case "zero wall budget" `Quick test_governor_wall_zero;
          Alcotest.test_case "shared interrupt flag" `Quick
            test_governor_interrupt_shared;
          Alcotest.test_case "reason strings" `Quick test_reason_strings;
        ] );
      ( "state-table-serialization",
        [
          QCheck_alcotest.to_alcotest table_roundtrip;
          Alcotest.test_case "corrupt table refused" `Quick
            test_table_corruption;
          QCheck_alcotest.to_alcotest vec_roundtrip;
          Alcotest.test_case "corrupt vec refused" `Quick test_vec_corruption;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail heals" `Quick test_journal_torn_tail;
          Alcotest.test_case "crash hook" `Quick test_journal_crash_hook;
        ] );
      ( "cell-codec",
        [ Alcotest.test_case "record round-trip" `Quick test_cell_codec ] );
      ( "resume-parity",
        [
          Alcotest.test_case "BFS" `Quick test_bfs_resume_parity;
          Alcotest.test_case "DFS" `Quick test_dfs_resume_parity;
          Alcotest.test_case "fingerprint" `Quick test_fp_resume_parity;
          Alcotest.test_case "fingerprint corrupt run refused" `Quick
            test_fp_corrupt_run_refused;
          Alcotest.test_case "fingerprint sweep" `Quick
            test_fp_sweep_resume_parity;
          Alcotest.test_case "fault explorer" `Quick test_fault_resume_parity;
          Alcotest.test_case "packed clean cell" `Quick
            test_packed_resume_clean_parity;
          Alcotest.test_case "packed deadlock cell" `Quick
            test_packed_resume_cycle_parity;
          Alcotest.test_case "verify_mutex sweep" `Quick
            test_verify_mutex_sweep_resume;
        ] );
      ( "map-differential",
        [
          Alcotest.test_case "crash at every append point" `Quick
            test_map_crash_resume_identical;
          Alcotest.test_case "stop skips remaining cells" `Quick
            test_map_stop_skips_remaining;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "restart with backoff" `Quick
            test_supervisor_restart_backoff;
          Alcotest.test_case "gives up" `Quick test_supervisor_gives_up;
        ] );
    ]
