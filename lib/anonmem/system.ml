(** Operational semantics of the fully-anonymous model: system states and
    atomic steps for a given protocol.

    A system state records the contents of the [M] physical registers, who
    last wrote each of them (bookkeeping used by the analyses, invisible to
    processors), each processor's local state, and the fixed hidden wiring.
    A step executes the pending operation of one processor, routing its
    private register index through the wiring — reads and writes are atomic,
    one register at a time, exactly as in Section 2 of the paper. *)

module Make (P : Protocol.S) = struct
  type state = {
    cfg : P.cfg;
    wiring : Wiring.t;
    registers : P.value array;  (** indexed by physical register *)
    last_writer : int option array;
        (** physical register -> last writing processor; [None] = initial
            value still in place.  Ghost state for the analyses. *)
    locals : P.local array;
    inputs : P.input array;
        (** the original inputs — crash-recovery restarts a processor from
            [P.init cfg inputs.(p)] (it cannot know it is the same one) *)
  }

  type event =
    | Read_ev of {
        p : int;
        local_reg : int;
        phys_reg : int;
        value : P.value;
        writer : int option;  (** whom [p] "reads from" (Section 2) *)
      }
    | Write_ev of {
        p : int;
        local_reg : int;
        phys_reg : int;
        value : P.value;
        previous : P.value;
        overwrote : int option;  (** previous last writer, if any *)
      }

  (** What the fault interpreter did, observable through [run ~on_fault].
      [Dropped_write] consumes a scheduler step (the processor believes it
      wrote); crash and restart notes consume none. *)
  type fault_note =
    | Dropped_write of {
        p : int;
        local_reg : int;
        phys_reg : int;
        value : P.value;  (** the value that never reached the register *)
        stuck : bool;  (** register stuck-at fault (else a write omission) *)
      }
    | Stale_read_note of {
        p : int;
        local_reg : int;
        phys_reg : int;
        stale : P.value;  (** what the degraded read returned *)
        fresh : P.value;  (** what an atomic read would have returned *)
      }
    | Crash_note of { p : int; recovering : bool }
    | Restart_note of { p : int; attempt : int }

  let init ~cfg ~wiring ~inputs =
    let n = P.processors cfg and m = P.registers cfg in
    if Wiring.processors wiring <> n then
      invalid_arg "System.init: wiring has wrong number of processors";
    if Wiring.registers wiring <> m then
      invalid_arg "System.init: wiring has wrong number of registers";
    if Array.length inputs <> n then
      invalid_arg "System.init: wrong number of inputs";
    {
      cfg;
      wiring;
      registers = Array.make m (P.register_init cfg);
      last_writer = Array.make m None;
      locals = Array.map (P.init cfg) inputs;
      inputs = Array.copy inputs;
    }

  let processors s = P.processors s.cfg
  let is_halted s p = P.halted s.cfg s.locals.(p)

  let enabled s =
    List.filter (fun p -> not (is_halted s p)) (List.init (processors s) Fun.id)

  let all_halted s = enabled s = []
  let output s p = P.output s.cfg s.locals.(p)
  let outputs s = Array.init (processors s) (output s)

  let event_of s p =
    match P.next s.cfg s.locals.(p) with
    | None -> None
    | Some (Protocol.Read i) ->
        let r = Wiring.phys s.wiring ~p i in
        Some
          (Read_ev
             {
               p;
               local_reg = i;
               phys_reg = r;
               value = s.registers.(r);
               writer = s.last_writer.(r);
             })
    | Some (Protocol.Write (i, v)) ->
        let r = Wiring.phys s.wiring ~p i in
        Some
          (Write_ev
             {
               p;
               local_reg = i;
               phys_reg = r;
               value = v;
               previous = s.registers.(r);
               overwrote = s.last_writer.(r);
             })

  (* In-place transition; callers owning [s] exclusively use this for
     speed. *)
  let step_in_place s p =
    match event_of s p with
    | None -> invalid_arg "System.step: processor has terminated"
    | Some (Read_ev { local_reg; phys_reg; value; _ } as ev) ->
        s.locals.(p) <- P.apply_read s.cfg s.locals.(p) ~reg:local_reg value;
        let _ = phys_reg in
        ev
    | Some (Write_ev { phys_reg; value; _ } as ev) ->
        s.registers.(phys_reg) <- value;
        s.last_writer.(phys_reg) <- Some p;
        s.locals.(p) <- P.apply_write s.cfg s.locals.(p);
        ev

  let copy s =
    {
      s with
      registers = Array.copy s.registers;
      last_writer = Array.copy s.last_writer;
      locals = Array.copy s.locals;
    }

  (* Pure transition: never mutates [s]. *)
  let step s p =
    let s' = copy s in
    let ev = step_in_place s' p in
    (s', ev)

  type stop_reason = All_halted | Scheduler_done | Max_steps

  (* The faulty interpreter.  Compiles the plan into per-processor /
     per-register arrays once, then runs the same scheduler loop with the
     fault semantics woven in:
     - [Crash_stop p at]: p is removed from [enabled] at times >= at;
     - [Crash_recover p at]: at time at, p's local state is reset to
       [P.init cfg inputs.(p)] (consuming no step);
     - [Omit_write p at]: armed at [at], fires on p's next write — the
       register keeps its value but p's local state advances (the write
       consumes its scheduler step);
     - [Stale_read p at]: armed at [at], fires on p's next read, which
       returns the register's previous value;
     - [Stuck_register r at]: every write to physical register r at time
       >= at is dropped (local state still advances). *)
  let run_faulty ~max_steps ~plan ~sched ?on_event ?on_fault state =
    let n = processors state and m = Array.length state.registers in
    let ev time e = match on_event with Some f -> f ~time e | None -> () in
    let note time nt = match on_fault with Some f -> f ~time nt | None -> () in
    let crash_at = Fault.crash_stops ~n plan in
    let recoveries = ref (Fault.recoveries plan) in
    let omits = Fault.omit_arms ~n plan in
    let stales = Fault.stale_arms ~n plan in
    let stuck_at = Fault.stuck_times ~m plan in
    let restarts = Array.make n 0 in
    let crash_noted = Array.make n false in
    (* Previous value of each physical register, for stale reads. *)
    let prev = Array.copy state.registers in
    let alive time p =
      match crash_at.(p) with Some c -> time < c | None -> true
    in
    let pop_due arr p time =
      match arr.(p) with
      | at :: rest when at <= time ->
          arr.(p) <- rest;
          true
      | _ -> false
    in
    let step_faulty time p =
      match event_of state p with
      | None -> invalid_arg "System.step: processor has terminated"
      | Some (Read_ev { local_reg; phys_reg; value; writer; _ }) ->
          if pop_due stales p time then (
            let stale = prev.(phys_reg) in
            state.locals.(p) <-
              P.apply_read state.cfg state.locals.(p) ~reg:local_reg stale;
            note time (Stale_read_note { p; local_reg; phys_reg; stale; fresh = value });
            ev time (Read_ev { p; local_reg; phys_reg; value = stale; writer = None }))
          else (
            state.locals.(p) <-
              P.apply_read state.cfg state.locals.(p) ~reg:local_reg value;
            ev time (Read_ev { p; local_reg; phys_reg; value; writer }))
      | Some (Write_ev { local_reg; phys_reg; value; previous; overwrote; _ }) ->
          let stuck =
            match stuck_at.(phys_reg) with Some t -> time >= t | None -> false
          in
          if stuck || pop_due omits p time then (
            state.locals.(p) <- P.apply_write state.cfg state.locals.(p);
            note time (Dropped_write { p; local_reg; phys_reg; value; stuck }))
          else (
            prev.(phys_reg) <- state.registers.(phys_reg);
            state.registers.(phys_reg) <- value;
            state.last_writer.(phys_reg) <- Some p;
            state.locals.(p) <- P.apply_write state.cfg state.locals.(p);
            ev time (Write_ev { p; local_reg; phys_reg; value; previous; overwrote }))
    in
    let rec go time =
      if time >= max_steps then (Max_steps, time)
      else
        match !recoveries with
        | (at, p) :: rest when at <= time ->
            (* Restart consumes no step: amnesiac rebirth on the original
               input. *)
            recoveries := rest;
            restarts.(p) <- restarts.(p) + 1;
            note time (Crash_note { p; recovering = true });
            state.locals.(p) <- P.init state.cfg state.inputs.(p);
            note time (Restart_note { p; attempt = restarts.(p) });
            go time
        | _ -> (
            Array.iteri
              (fun p noted ->
                if (not noted) && not (alive time p) then (
                  crash_noted.(p) <- true;
                  if not (is_halted state p) then
                    note time (Crash_note { p; recovering = false })))
              crash_noted;
            match List.filter (alive time) (enabled state) with
            | [] -> ((if all_halted state then All_halted else Scheduler_done), time)
            | en -> (
                match Scheduler.pick sched ~time ~enabled:en with
                | None -> (Scheduler_done, time)
                | Some p ->
                    if not (List.mem p en) then
                      invalid_arg
                        "System.run: scheduler picked an unavailable processor";
                    step_faulty time p;
                    go (time + 1)))
    in
    go 0

  (* Silent transition: the same state change as [step_in_place] but
     without constructing the event record — and without the [last_writer]
     ghost update, which exists only to decorate events and renderings.
     The zero-observer fast path below is the only caller. *)
  let step_silent s p =
    match P.next s.cfg s.locals.(p) with
    | None -> invalid_arg "System.step: processor has terminated"
    | Some (Protocol.Read i) ->
        let r = Wiring.phys s.wiring ~p i in
        s.locals.(p) <- P.apply_read s.cfg s.locals.(p) ~reg:i s.registers.(r)
    | Some (Protocol.Write (i, v)) ->
        let r = Wiring.phys s.wiring ~p i in
        s.registers.(r) <- v;
        s.locals.(p) <- P.apply_write s.cfg s.locals.(p)

  (* The zero-observer fast path: no event records, no ghost bookkeeping,
     and the enabled list is maintained incrementally (halting is
     permanent in the fault-free semantics, so it only ever shrinks —
     recomputed from scratch it would hold exactly the same pids in the
     same increasing order, which keeps scheduler decisions identical to
     the observed path). *)
  let run_fast ?(from_time = 0) ~max_steps ~sched ?step_counts state =
    let count =
      match step_counts with
      | None -> fun _ -> ()
      | Some c -> fun p -> c.(p) <- c.(p) + 1
    in
    let rec go time enabled =
      if time >= max_steps then (Max_steps, time)
      else
        match enabled with
        | [] -> (All_halted, time)
        | en -> (
            match Scheduler.pick sched ~time ~enabled:en with
            | None -> (Scheduler_done, time)
            | Some p ->
                (* [en] is exactly the non-halted set here, so membership
                   is a halt test — O(1) instead of a list scan. *)
                if is_halted state p then
                  invalid_arg "System.run: scheduler picked a halted processor";
                step_silent state p;
                count p;
                let en =
                  if is_halted state p then List.filter (( <> ) p) en else en
                in
                go (time + 1) en)
    in
    go from_time (enabled state)

  (* The flat register file behind the boxed state, if the protocol and
     instance fit the packed representation: wiring flattened into one
     int array so the machine never chases a permutation object. *)
  let flat_machine state =
    let n = processors state and m = Array.length state.registers in
    if n > Repro_util.Bits.max_width then None
    else
      let phys =
        Array.init (n * m) (fun k -> Wiring.phys state.wiring ~p:(k / m) (k mod m))
      in
      P.flat state.cfg ~phys ~inputs:state.inputs ~registers:state.registers
        ~locals:state.locals

  (* The hardware-floor fault-free loop: the enabled set is a bitmask,
     the scheduler runs its int twin, and every transition lands in the
     machine's preallocated buffers — no allocation per step.  When the
     machine refuses a transition ([Protocol.Fallback], raised before any
     mutation) we sync the boxed state, replay the refused step through
     the boxed functions on the {e already picked} processor — the
     scheduler has advanced past this pick, so re-picking would desync
     its rng — and finish on the boxed fast path. *)
  let run_flat ~machine ~mask_pick ~max_steps ~sched ?step_counts state =
    let count =
      match step_counts with
      | None -> fun _ -> ()
      | Some c -> fun p -> c.(p) <- c.(p) + 1
    in
    let mask0 = ref 0 in
    for p = processors state - 1 downto 0 do
      if not (machine.Protocol.halted p) then mask0 := !mask0 lor (1 lsl p)
    done;
    let finish reason time =
      machine.Protocol.sync ();
      (reason, time)
    in
    let rec go time mask =
      if time >= max_steps then finish Max_steps time
      else if mask = 0 then finish All_halted time
      else
        let p = mask_pick ~time ~mask in
        if p = -1 then finish Scheduler_done time
        else if mask land (1 lsl p) = 0 then
          invalid_arg "System.run: scheduler picked a halted processor"
        else
          match machine.Protocol.step p with
          | () ->
              count p;
              let mask =
                if machine.Protocol.halted p then mask land lnot (1 lsl p)
                else mask
              in
              go (time + 1) mask
          | exception Protocol.Fallback ->
              machine.Protocol.sync ();
              step_silent state p;
              count p;
              run_fast ~from_time:(time + 1) ~max_steps ~sched ?step_counts
                state
    in
    go 0 !mask0

  (* The flat faulty interpreter: [run_faulty]'s semantics step for step
     (same compiled plan views, same pop/short-circuit order, recoveries
     consume no step and may un-halt), minus the note/event plumbing —
     it only runs when there are no observers.  Restricted to [total]
     machines, so no [Fallback] can escape mid-plan. *)
  let run_faulty_flat ~machine ~mask_pick ~max_steps ~plan ?step_counts state =
    let n = processors state and m = Array.length state.registers in
    let count =
      match step_counts with
      | None -> fun _ -> ()
      | Some c -> fun p -> c.(p) <- c.(p) + 1
    in
    let crash_at = Fault.crash_stops ~n plan in
    let recoveries = ref (Fault.recoveries plan) in
    let omits = Fault.omit_arms ~n plan in
    let stales = Fault.stale_arms ~n plan in
    let stuck_at = Fault.stuck_times ~m plan in
    let pop_due arr p time =
      match arr.(p) with
      | at :: rest when at <= time ->
          arr.(p) <- rest;
          true
      | _ -> false
    in
    (* Alive processors as a shrinking mask, advanced through the crash
       times in order (mirrors [run_faulty]'s [alive]: dead at [t >= c]). *)
    let crashes =
      Array.to_list crash_at
      |> List.mapi (fun p c -> Option.map (fun c -> (c, p)) c)
      |> List.filter_map Fun.id |> List.sort compare |> Array.of_list
    in
    let alive = ref (Repro_util.Bits.full n) and next_crash = ref 0 in
    let emask = ref 0 in
    for p = n - 1 downto 0 do
      if not (machine.Protocol.halted p) then emask := !emask lor (1 lsl p)
    done;
    let set_enabled p =
      if machine.Protocol.halted p then emask := !emask land lnot (1 lsl p)
      else emask := !emask lor (1 lsl p)
    in
    let finish reason time =
      machine.Protocol.sync ();
      (reason, time)
    in
    let rec go time =
      if time >= max_steps then finish Max_steps time
      else
        match !recoveries with
        | (at, p) :: rest when at <= time ->
            (* Restart consumes no step: amnesiac rebirth on the original
               input.  May un-halt [p]. *)
            recoveries := rest;
            machine.Protocol.reset p;
            set_enabled p;
            go time
        | _ ->
            while
              !next_crash < Array.length crashes
              && fst crashes.(!next_crash) <= time
            do
              alive := !alive land lnot (1 lsl snd crashes.(!next_crash));
              incr next_crash
            done;
            let avail = !emask land !alive in
            if avail = 0 then
              finish (if !emask = 0 then All_halted else Scheduler_done) time
            else
              let p = mask_pick ~time ~mask:avail in
              if p = -1 then finish Scheduler_done time
              else if avail land (1 lsl p) = 0 then
                invalid_arg
                  "System.run: scheduler picked an unavailable processor"
              else begin
                (let op = machine.Protocol.peek p in
                 if op land 1 = 1 then
                   (* Pending write.  Stuck-register short-circuits the
                      omission arm: the arm is {e not} consumed. *)
                   let stuck =
                     match stuck_at.(op lsr 1) with
                     | Some t -> time >= t
                     | None -> false
                   in
                   if stuck || pop_due omits p time then
                     machine.Protocol.step_omit p
                   else machine.Protocol.step p
                 else if pop_due stales p time then
                   machine.Protocol.step_stale p
                 else machine.Protocol.step p);
                count p;
                set_enabled p;
                go (time + 1)
              end
    in
    go 0

  (** Drive [state] under [sched] for at most [max_steps] steps, mutating it
      in place.  [on_event] observes each step (time is the 0-based step
      index).  Returns why the run stopped and the number of steps taken.
      [step_counts] (length [n]) is incremented at index [p] for every
      scheduler step consumed by processor [p] — including dropped writes
      under a fault plan, which produce no event.

      [faults] installs a fault plan (times are global step indices);
      [on_fault] observes what the injector did.  Without a plan the
      fault-free loop runs — the fault layer costs nothing when disabled.
      An {e empty} plan still takes the interpreting path (that is what
      the overhead benchmark measures).

      Without a plan {e and} without observers, a fast path executes the
      same transitions but skips event construction and the [last_writer]
      ghost bookkeeping entirely; after such a run [last_writer] still
      holds its initial [None]s.  The ghost state never influences
      transitions, outputs or stop reasons — it is only reported through
      events and renderings, which the fast path by definition has none
      of — so verdicts computed from a fast run agree with the observed
      path (test/test_fuzz.ml checks this differentially).

      On the observer-free paths, when the protocol provides a flat
      machine ({!Protocol.S.flat}), the instance fits a word mask and the
      scheduler has an int twin, the run executes on the flat register
      file instead — same transitions into preallocated buffers, synced
      back into [state] before returning, byte-for-byte what the boxed
      path would have produced.  [~flat:false] forces the boxed paths
      (the differential tests and the before-rows of the benchmark).
      Fault plans additionally require a [total] machine (one that never
      falls back mid-plan); otherwise the boxed interpreter runs. *)
  let run ?(max_steps = 100_000) ?faults ?step_counts ?(flat = true) ~sched
      ?on_event ?on_fault state =
    let count p =
      match step_counts with None -> () | Some c -> c.(p) <- c.(p) + 1
    in
    let flat_machine () =
      if not flat then None
      else
        match Scheduler.mask_pick sched with
        | None -> None
        | Some mask_pick ->
            Option.map (fun m -> (m, mask_pick)) (flat_machine state)
    in
    match (faults, on_event, on_fault) with
    | Some plan, None, None -> (
        match flat_machine () with
        | Some (machine, mask_pick) when machine.Protocol.total ->
            run_faulty_flat ~machine ~mask_pick ~max_steps ~plan ?step_counts
              state
        | _ ->
            run_faulty ~max_steps ~plan ~sched
              ~on_event:(fun ~time:_ ev ->
                match ev with Read_ev { p; _ } | Write_ev { p; _ } -> count p)
              ~on_fault:(fun ~time:_ nt ->
                match nt with Dropped_write { p; _ } -> count p | _ -> ())
              state)
    | Some plan, _, _ ->
        let on_fault_count ~time nt =
          (match nt with Dropped_write { p; _ } -> count p | _ -> ());
          match on_fault with Some f -> f ~time nt | None -> ()
        in
        let on_event_count ~time ev =
          (match ev with Read_ev { p; _ } | Write_ev { p; _ } -> count p);
          match on_event with Some f -> f ~time ev | None -> ()
        in
        run_faulty ~max_steps ~plan ~sched ~on_event:on_event_count
          ~on_fault:on_fault_count state
    | None, None, None -> (
        match flat_machine () with
        | Some (machine, mask_pick) ->
            run_flat ~machine ~mask_pick ~max_steps ~sched ?step_counts state
        | None -> run_fast ~max_steps ~sched ?step_counts state)
    | None, _, _ ->
        let rec go time =
          if time >= max_steps then (Max_steps, time)
          else
            match enabled state with
            | [] -> (All_halted, time)
            | en -> (
                match Scheduler.pick sched ~time ~enabled:en with
                | None -> (Scheduler_done, time)
                | Some p ->
                    if not (List.mem p en) then
                      invalid_arg "System.run: scheduler picked a halted processor";
                    let ev = step_in_place state p in
                    count p;
                    (match on_event with Some f -> f ~time ev | None -> ());
                    go (time + 1))
        in
        go 0

  let pp_event cfg ppf = function
    | Read_ev { p; local_reg; phys_reg; value; writer } ->
        Fmt.pf ppf "p%d reads r%d (own #%d) = %a%a" (p + 1) (phys_reg + 1)
          (local_reg + 1) (P.pp_value cfg) value
          (fun ppf -> function
            | None -> ()
            | Some q -> Fmt.pf ppf " [from p%d]" (q + 1))
          writer
    | Write_ev { p; local_reg; phys_reg; value; overwrote; _ } ->
        Fmt.pf ppf "p%d writes r%d (own #%d) := %a%a" (p + 1) (phys_reg + 1)
          (local_reg + 1) (P.pp_value cfg) value
          (fun ppf -> function
            | None -> ()
            | Some q -> Fmt.pf ppf " [overwrites p%d]" (q + 1))
          overwrote

  let pp_fault_note cfg ppf = function
    | Dropped_write { p; local_reg; phys_reg; value; stuck } ->
        Fmt.pf ppf "p%d write r%d (own #%d) := %a DROPPED (%s)" (p + 1)
          (phys_reg + 1) (local_reg + 1) (P.pp_value cfg) value
          (if stuck then "stuck register" else "omission")
    | Stale_read_note { p; local_reg; phys_reg; stale; fresh } ->
        Fmt.pf ppf "p%d reads r%d (own #%d) STALE = %a (fresh was %a)" (p + 1)
          (phys_reg + 1) (local_reg + 1) (P.pp_value cfg) stale
          (P.pp_value cfg) fresh
    | Crash_note { p; recovering } ->
        Fmt.pf ppf "p%d crashes%s" (p + 1)
          (if recovering then " (will recover)" else "")
    | Restart_note { p; attempt } ->
        Fmt.pf ppf "p%d restarts (attempt %d, fresh local state)" (p + 1) attempt

  let pp_state ppf s =
    let m = Array.length s.registers in
    Fmt.pf ppf "@[<v>";
    for r = 0 to m - 1 do
      Fmt.pf ppf "r%d = %a%a@," (r + 1) (P.pp_value s.cfg) s.registers.(r)
        (fun ppf -> function
          | None -> ()
          | Some q -> Fmt.pf ppf "  (last writer p%d)" (q + 1))
        s.last_writer.(r)
    done;
    Array.iteri
      (fun p l -> Fmt.pf ppf "p%d: %a@," (p + 1) (P.pp_local s.cfg) l)
      s.locals;
    Fmt.pf ppf "@]"
end
