(** Execution traces and covering metrics.

    The central difficulty of the fully-anonymous model is that processors
    cover and overwrite each other ("write-stepping", Section 2.1).  This
    module records the events of a run and derives quantitative covering
    metrics:

    - {e overwrites}: writes landing on a register whose last writer was a
      different processor;
    - {e lost writes}: writes that were overwritten before any processor
      read them — information that left no trace in the computation.

    It also renders executions as step tables in the style of the paper's
    Figure 2 (one row per shared-memory step).

    Because {!System.Make} is applicative, [Trace.Make(P).Sys] is the same
    module type as the caller's [System.Make(P)] — recorders plug directly
    into [Sys.run ~on_event]. *)

module Make (P : Protocol.S) = struct
  module Sys = System.Make (P)

  type t = {
    mutable events : (int * Sys.event) list;  (** reversed *)
    mutable faults : (int * Sys.fault_note) list;  (** reversed *)
    mutable count : int;
  }

  let create () = { events = []; faults = []; count = 0 }

  let on_event t ~time ev =
    t.events <- (time, ev) :: t.events;
    t.count <- t.count + 1

  (** Recorder for [Sys.run ~on_fault]: keeps the injector's notes so
      fault rows can be interleaved into the step table and dropped writes
      counted into the executed schedule. *)
  let on_fault t ~time nt = t.faults <- (time, nt) :: t.faults

  let events t = List.rev t.events
  let faults t = List.rev t.faults
  let length t = t.count

  (** The processor of each step, oldest first: the executed schedule.
      Replaying it as a scripted schedule from the same initial state
      reproduces the run exactly (protocols are deterministic).  Dropped
      writes consumed a scheduler step without producing an event, so they
      are merged back in by time. *)
  let pids t =
    let ops =
      List.rev_map
        (fun (time, ev) ->
          match ev with
          | Sys.Read_ev { p; _ } | Sys.Write_ev { p; _ } -> (time, p))
        t.events
    in
    let dropped =
      List.rev
        (List.filter_map
           (fun (time, nt) ->
             match nt with
             | Sys.Dropped_write { p; _ } -> Some (time, p)
             | _ -> None)
           t.faults)
    in
    List.merge
      (fun (t1, _) (t2, _) -> compare t1 t2)
      ops dropped
    |> List.map snd

  type covering = {
    writes : int;
    reads : int;
    overwrites : int;
        (** writes replacing a value last written by a {e different}
            processor *)
    lost_writes : int;
        (** writes overwritten before any read returned them: their
            information never reached anyone *)
  }

  let covering t =
    let m = 64 in
    (* last write per physical register: (writer, read_since) *)
    let last : (int * bool ref) option array = Array.make m None in
    let writes = ref 0 and reads = ref 0 and overwrites = ref 0 and lost = ref 0 in
    List.iter
      (fun (_, ev) ->
        match ev with
        | Sys.Read_ev { phys_reg; _ } -> (
            incr reads;
            match last.(phys_reg) with
            | Some (_, read_since) -> read_since := true
            | None -> ())
        | Sys.Write_ev { p; phys_reg; _ } ->
            incr writes;
            (match last.(phys_reg) with
            | Some (q, read_since) ->
                if q <> p then incr overwrites;
                if not !read_since then incr lost
            | None -> ());
            last.(phys_reg) <- Some (p, ref false))
      (events t);
    { writes = !writes; reads = !reads; overwrites = !overwrites; lost_writes = !lost }

  (** One row per step: time, processor, operation, physical register,
      value written or read.  Fault-injector notes are interleaved by
      time: crash/restart rows before the step at the same time (they
      happen between steps), dropped-write and stale-read annotations
      after it. *)
  let to_table cfg t =
    let tbl =
      Repro_util.Text_table.create
        ~headers:[ "step"; "proc"; "op"; "reg"; "value"; "note" ]
    in
    let event_row time ev =
      match ev with
      | Sys.Read_ev { p; phys_reg; value; writer; _ } ->
          [
            string_of_int (time + 1);
            Printf.sprintf "p%d" (p + 1);
            "read";
            Printf.sprintf "r%d" (phys_reg + 1);
            Fmt.str "%a" (P.pp_value cfg) value;
            (match writer with
            | Some q -> Printf.sprintf "from p%d" (q + 1)
            | None -> "initial");
          ]
    | Sys.Write_ev { p; phys_reg; value; overwrote; _ } ->
          [
            string_of_int (time + 1);
            Printf.sprintf "p%d" (p + 1);
            "write";
            Printf.sprintf "r%d" (phys_reg + 1);
            Fmt.str "%a" (P.pp_value cfg) value;
            (match overwrote with
            | Some q when q <> p -> Printf.sprintf "overwrites p%d" (q + 1)
            | _ -> "");
          ]
    in
    let fault_row time nt =
      match nt with
      | Sys.Dropped_write { p; phys_reg; value; stuck; _ } ->
          [
            string_of_int (time + 1);
            Printf.sprintf "p%d" (p + 1);
            "write✗";
            Printf.sprintf "r%d" (phys_reg + 1);
            Fmt.str "%a" (P.pp_value cfg) value;
            (if stuck then "dropped: stuck register" else "dropped: omission");
          ]
      | Sys.Stale_read_note { p; phys_reg; fresh; _ } ->
          [
            string_of_int (time + 1);
            Printf.sprintf "p%d" (p + 1);
            "~";
            Printf.sprintf "r%d" (phys_reg + 1);
            "";
            Fmt.str "stale read (fresh was %a)" (P.pp_value cfg) fresh;
          ]
      | Sys.Crash_note { p; recovering } ->
          [
            string_of_int (time + 1);
            Printf.sprintf "p%d" (p + 1);
            "crash";
            "";
            "";
            (if recovering then "will recover" else "crash-stop");
          ]
      | Sys.Restart_note { p; attempt } ->
          [
            string_of_int (time + 1);
            Printf.sprintf "p%d" (p + 1);
            "restart";
            "";
            "";
            Printf.sprintf "fresh local state (attempt %d)" attempt;
          ]
    in
    (* Merge events and fault notes into one chronological row stream.
       Priority: crash/restart notes precede the step sharing their time;
       dropped-write / stale annotations follow it. *)
    let rows =
      List.map (fun (time, ev) -> ((time, 1), event_row time ev)) (events t)
      @ List.map
          (fun (time, nt) ->
            let prio =
              match nt with
              | Sys.Crash_note _ | Sys.Restart_note _ -> 0
              | Sys.Dropped_write _ | Sys.Stale_read_note _ -> 2
            in
            ((time, prio), fault_row time nt))
          (faults t)
    in
    List.iter
      (fun (_, row) -> Repro_util.Text_table.add_row tbl row)
      (List.stable_sort (fun (k1, _) (k2, _) -> compare k1 k2) rows);
    tbl

  let pp_covering ppf c =
    Fmt.pf ppf "%d writes (%d overwrites, %d lost), %d reads" c.writes
      c.overwrites c.lost_writes c.reads
end
