(* The eventual pattern (Section 4 / Theorem 4.8): stable views of the
   write-scan loop always form a DAG with a unique source, checked on
   hand-built view sets, on the Figure-2 schedule, and as a property over
   random wirings/schedules. *)

open Repro_util
module SV = Analysis.Stable_views
module VG = Analysis.View_graph

let iset = Alcotest.testable (Fmt.of_to_string Iset.to_string) Iset.equal
let s = Iset.of_list

(* --- View_graph on hand-built sets --------------------------------------- *)

let test_graph_of_figure2_views () =
  let g = VG.of_views [ s [ 1 ]; s [ 1; 2 ]; s [ 1; 3 ] ] in
  Alcotest.(check int) "3 vertices" 3 (VG.vertex_count g);
  Alcotest.(check int) "2 edges" 2 (VG.edge_count g);
  Alcotest.(check bool) "dag" true (VG.is_dag g);
  Alcotest.(check (option (Alcotest.testable (Fmt.of_to_string Iset.to_string) Iset.equal)))
    "unique source {1}"
    (Some (s [ 1 ]))
    (VG.unique_source g)

let test_graph_dedups_views () =
  let g = VG.of_views [ s [ 1 ]; s [ 1 ]; s [ 1; 2 ]; s [ 1; 2 ] ] in
  Alcotest.(check int) "2 distinct vertices" 2 (VG.vertex_count g)

let test_two_sources_rejected () =
  let g = VG.of_views [ s [ 1; 2 ]; s [ 1; 3 ]; s [ 1; 2; 3 ] ] in
  Alcotest.(check bool) "dag still" true (VG.is_dag g);
  Alcotest.(check bool) "no unique source" true (VG.unique_source g = None);
  Alcotest.(check bool) "theorem violated" false (VG.satisfies_theorem_4_8 g)

let test_single_view_is_source () =
  let g = VG.of_views [ s [ 1; 2; 3 ] ] in
  Alcotest.(check bool) "singleton graph ok" true (VG.satisfies_theorem_4_8 g)

let test_chain_unique_source () =
  let g = VG.of_views [ s [ 1 ]; s [ 1; 2 ]; s [ 1; 2; 3 ] ] in
  Alcotest.(check bool) "chain satisfies" true (VG.satisfies_theorem_4_8 g);
  Alcotest.(check int) "3 edges (transitive closure)" 3 (VG.edge_count g)

let test_source_requires_containment_in_all () =
  (* unique minimal but not contained in all is impossible for sets;
     cross-check with an antichain over a common source *)
  let g = VG.of_views [ s [ 2 ]; s [ 2; 3 ]; s [ 2; 4 ]; s [ 2; 3; 4 ] ] in
  Alcotest.(check (option iset)) "source {2}" (Some (s [ 2 ])) (VG.unique_source g)

(* --- Stable views from executions ----------------------------------------- *)

let test_fair_execution_stabilizes_to_full_view () =
  (* Under a fair random schedule with enough registers, all views converge
     to the full input set: the graph is a single vertex. *)
  match
    SV.run_random ~n:4 ~m:4 ~inputs:[| 1; 2; 3; 4 |] ~seed:5 ()
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "stabilized" true (r.SV.stabilized_at < r.SV.total_steps);
      Alcotest.(check bool) "theorem holds" true (VG.satisfies_theorem_4_8 r.SV.graph)

let test_figure2_schedule_gives_three_stable_views () =
  let cfg = Algorithms.Write_scan.cfg ~n:3 ~m:3 in
  match
    SV.run ~window:72 ~cfg
      ~wiring:(Analysis.Figure2.base_wiring ())
      ~inputs:[| 1; 2; 3 |] ~live:[ 0; 1; 2 ]
      ~sched:
        (Anonmem.Scheduler.script_then_cycle
           ~prefix:Analysis.Figure2.step_prefix ~cycle:Analysis.Figure2.step_cycle)
      ()
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let views = List.map snd r.SV.stable_views in
      Alcotest.(check int) "three live processors" 3 (List.length views);
      Alcotest.(check bool) "{1} among them" true
        (List.exists (Iset.equal (s [ 1 ])) views);
      Alcotest.(check bool) "{1,2} among them" true
        (List.exists (Iset.equal (s [ 1; 2 ])) views);
      Alcotest.(check bool) "{1,3} among them" true
        (List.exists (Iset.equal (s [ 1; 3 ])) views);
      Alcotest.(check (option iset)) "unique source {1}" (Some (s [ 1 ]))
        (VG.unique_source r.SV.graph);
      Alcotest.(check bool) "theorem 4.8" true (VG.satisfies_theorem_4_8 r.SV.graph)

let test_live_subset_excludes_stopped_processor () =
  (* Processor 2 takes no steps at all; its (initial) view must not appear
     among the stable views when it is excluded from [live]. *)
  let cfg = Algorithms.Write_scan.cfg ~n:3 ~m:3 in
  let wiring = Anonmem.Wiring.of_lists [ [ 0; 1; 2 ]; [ 1; 0; 2 ]; [ 0; 1; 2 ] ] in
  match
    SV.run ~window:64 ~cfg ~wiring ~inputs:[| 1; 2; 3 |] ~live:[ 0; 1 ]
      ~sched:(Anonmem.Scheduler.script ~cycle:true [ 0; 1 ])
      ()
  with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "two live" 2 (List.length r.SV.stable_views);
      List.iter
        (fun (_, v) ->
          Alcotest.(check bool) "stopped processor's input unseen" true
            (not (Iset.mem 3 v)))
        r.SV.stable_views;
      Alcotest.(check bool) "theorem holds on live views" true
        (VG.satisfies_theorem_4_8 r.SV.graph)

(* --- Theorem 4.8 as a property ------------------------------------------- *)

let prop_theorem_4_8 =
  QCheck.Test.make ~name:"stable views form a DAG with unique source" ~count:120
    QCheck.(triple (int_range 2 7) (int_range 2 6) (int_bound 100_000))
    (fun (n, m, seed) ->
      let groups = max 1 (n - (seed mod 3)) in
      let inputs = Array.init n (fun i -> 1 + (i mod groups)) in
      match SV.run_random ~n ~m ~inputs ~seed () with
      | Ok r -> VG.satisfies_theorem_4_8 r.SV.graph
      | Error _ -> QCheck.assume_fail ())

(* Random fair schedules almost always collapse all views into one; the
   interesting multi-vertex stable patterns arise under ultimately-periodic
   adversarial schedules.  Generate random cyclic scripts (the live set is
   the script's support) and check the theorem on the pattern each one
   settles into. *)
let prop_theorem_4_8_periodic =
  QCheck.Test.make ~name:"theorem 4.8 under random periodic schedules"
    ~count:150
    QCheck.(
      triple (int_range 2 5) (int_range 2 4)
        (pair (int_bound 100_000)
           (list_of_size (Gen.int_range 4 24) (int_bound 100))))
    (fun (n, m, (wseed, raw_script)) ->
      let script = List.map (fun x -> x mod n) raw_script in
      let live = List.sort_uniq compare script in
      QCheck.assume (script <> []);
      let cfg = Algorithms.Write_scan.cfg ~n ~m in
      let wiring = Anonmem.Wiring.random (Rng.create ~seed:wseed) ~n ~m in
      let inputs = Array.init n (fun i -> i + 1) in
      let window = max (8 * n * (m + 1)) (4 * List.length script) in
      match
        SV.run ~window ~cfg ~wiring ~inputs ~live
          ~sched:(Anonmem.Scheduler.script ~cycle:true script)
          ()
      with
      | Ok r -> VG.satisfies_theorem_4_8 r.SV.graph
      | Error _ -> QCheck.assume_fail ())

let prop_source_contained_in_all =
  QCheck.Test.make ~name:"unique source is contained in every stable view"
    ~count:80
    QCheck.(pair (int_range 2 6) (int_bound 100_000))
    (fun (n, seed) ->
      let inputs = Array.init n (fun i -> i + 1) in
      match SV.run_random ~n ~m:n ~inputs ~seed () with
      | Ok r -> (
          match VG.unique_source r.SV.graph with
          | None -> false
          | Some src ->
              List.for_all
                (fun (_, v) -> Iset.subset src v)
                r.SV.stable_views)
      | Error _ -> QCheck.assume_fail ())

let () =
  Alcotest.run "stable_views"
    [
      ( "view-graph",
        [
          Alcotest.test_case "figure-2 views" `Quick test_graph_of_figure2_views;
          Alcotest.test_case "dedup" `Quick test_graph_dedups_views;
          Alcotest.test_case "two sources detected" `Quick test_two_sources_rejected;
          Alcotest.test_case "single view" `Quick test_single_view_is_source;
          Alcotest.test_case "chain" `Quick test_chain_unique_source;
          Alcotest.test_case "antichain over source" `Quick
            test_source_requires_containment_in_all;
        ] );
      ( "executions",
        [
          Alcotest.test_case "fair execution stabilizes" `Quick
            test_fair_execution_stabilizes_to_full_view;
          Alcotest.test_case "figure-2 schedule" `Quick
            test_figure2_schedule_gives_three_stable_views;
          Alcotest.test_case "live subset" `Quick
            test_live_subset_excludes_stopped_processor;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_theorem_4_8;
            prop_theorem_4_8_periodic;
            prop_source_contained_in_all;
          ] );
    ]
