lib/util/digraph.mli:
