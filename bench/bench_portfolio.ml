(* Portfolio verification benchmark: wall-clock and visited states for
   each cell class of the feasibility map — a clean cell (all wirings
   swept, liveness pass included), a deadlocked cell (fair-SCC hit) and
   a safety-violating cell (early exit), for each of the three
   portfolio protocols — full wiring sweep vs symmetry-reduced vs the
   processor-relabelling wiring-class quotient.  Results go to
   BENCH_portfolio.json and a table on stdout; the EXPERIMENTS.md X9
   notes quote this output.

   The interesting column is the clean-cell wiring-class factor: clean
   cells dominate the map's cost (they must sweep every wiring), and
   with all-distinct identities the state-level symmetry group is
   trivial (reduction is a measured no-op) — the up-to-n! wiring-class
   cut is what makes the full n=3 map tractable. *)


type row = {
  task : string;
  n : int;
  m : int;
  mode : string;
  verdict : string;
  states : int;
  wall_s : float;
}

let rows : row list ref = ref []

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let states_of = function
  | Core.Verified { states; _ } -> states
  | _ -> 0

let verdict_name = function
  | Core.Verified _ -> "verified"
  | Core.Safety_violation _ -> "safety-violation"
  | Core.Liveness_violation _ -> "deadlock"
  | Core.Resource_limit _ -> "limit"

let cell task ~n ~m ~mode verify =
  let reduction = mode = "reduced" in
  let wiring_classes = mode = "classes" || mode = "packed" in
  let v, wall_s = time (fun () -> verify ~reduction ~wiring_classes) in
  let row =
    { task; n; m; mode; verdict = verdict_name v; states = states_of v; wall_s }
  in
  rows := row :: !rows;
  Fmt.pr "%-7s n=%d m=%d %-9s %-16s %8d states %8.3fs@." task n m mode
    row.verdict row.states wall_s

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  List.iter
    (fun mode ->
      (* "packed" = wiring classes + the single-word mutex engine; it is
         mutex-specific, so the other protocols' cells only run in the
         generic modes. *)
      let packed = mode = "packed" in
      (* Clean cells: the expensive class (every wiring swept). *)
      cell "mutex" ~n:2 ~m:3 ~mode (fun ~reduction ~wiring_classes ->
          Core.verify_mutex ~n:2 ~m:3 ~reduction ~wiring_classes ~packed ());
      if not packed then begin
        cell "naming" ~n:2 ~m:3 ~mode (fun ~reduction ~wiring_classes ->
            Core.verify_naming ~n:2 ~m:3 ~reduction ~wiring_classes ());
        cell "leader" ~n:2 ~m:2 ~mode (fun ~reduction ~wiring_classes ->
            Core.verify_leader ~n:2 ~m:2 ~reduction ~wiring_classes ())
      end;
      if not quick then begin
        cell "mutex" ~n:2 ~m:5 ~mode (fun ~reduction ~wiring_classes ->
            Core.verify_mutex ~n:2 ~m:5 ~reduction ~wiring_classes ~packed ());
        if not packed then
          cell "naming" ~n:2 ~m:5 ~mode (fun ~reduction ~wiring_classes ->
              Core.verify_naming ~n:2 ~m:5 ~reduction ~wiring_classes ())
      end;
      (* Violating cells: early exit, cheap by construction. *)
      cell "mutex" ~n:2 ~m:2 ~mode (fun ~reduction ~wiring_classes ->
          Core.verify_mutex ~n:2 ~m:2 ~reduction ~wiring_classes ~packed ());
      cell "mutex" ~n:3 ~m:2 ~mode (fun ~reduction ~wiring_classes ->
          Core.verify_mutex ~n:3 ~m:2 ~reduction ~wiring_classes ~packed ());
      if not packed then
        cell "leader" ~n:2 ~m:1 ~mode (fun ~reduction ~wiring_classes ->
            Core.verify_leader ~n:2 ~m:1 ~reduction ~wiring_classes ()))
    [ "full"; "reduced"; "classes"; "packed" ];
  (* JSON dump, newline-separated objects like the other benchmarks. *)
  let oc = open_out "BENCH_portfolio.json" in
  output_string oc "{\n  \"portfolio\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc
        "    {\"task\": \"%s\", \"n\": %d, \"m\": %d, \"mode\": \"%s\", \
         \"verdict\": \"%s\", \"states\": %d, \"wall_s\": %.6f}"
        r.task r.n r.m r.mode r.verdict r.states r.wall_s)
    (List.rev !rows);
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Fmt.pr "wrote BENCH_portfolio.json@."
