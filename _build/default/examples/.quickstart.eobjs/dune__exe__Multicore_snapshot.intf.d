examples/multicore_snapshot.mli:
