lib/tasks/renaming_task.mli: Outcome Repro_util
