lib/modelcheck/explorer.ml: Anonmem Array Bytes Fmt Fun Hashtbl List Option Queue Repro_util Tasks Vec
