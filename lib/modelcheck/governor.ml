(* Resource governor for long verification runs: wall-clock, heap and
   state-quota budgets plus an externally shared interrupt flag, polled
   by the engines once per popped state.  A tripped governor is sticky —
   once [tick] reports a reason, every later [tick] reports the same
   one, so an engine that checks the governor at several points in its
   loop cannot see the budget flicker back under the line. *)

type reason = Wall_clock | Heap | Quota | Interrupted

let reason_to_string = function
  | Wall_clock -> "wall-clock"
  | Heap -> "heap"
  | Quota -> "quota"
  | Interrupted -> "interrupted"

let reason_of_string = function
  | "wall-clock" -> Some Wall_clock
  | "heap" -> Some Heap
  | "quota" -> Some Quota
  | "interrupted" -> Some Interrupted
  | _ -> None

let pp_reason ppf r = Fmt.string ppf (reason_to_string r)

type t = {
  wall_seconds : float option;
  quota : int option;
  started : float;
  interrupted_flag : bool ref;
  heap_hit : bool ref; (* set from the Gc alarm, read on tick *)
  alarm : Gc.alarm option;
  mutable ticks : int;
  mutable tripped : reason option;
}

let create ?wall_seconds ?heap_words ?quota ?interrupted_flag () =
  let interrupted_flag =
    match interrupted_flag with Some f -> f | None -> ref false
  in
  let heap_hit = ref false in
  let alarm =
    match heap_words with
    | None -> None
    | Some budget ->
        (* The alarm runs at the end of each major collection — the
           moment the live-word figure is fresh and meaningful. *)
        Some
          (Gc.create_alarm (fun () ->
               if (Gc.quick_stat ()).heap_words > budget then heap_hit := true))
  in
  {
    wall_seconds;
    quota;
    started = Unix.gettimeofday ();
    interrupted_flag;
    heap_hit;
    alarm;
    ticks = 0;
    tripped = None;
  }

let elapsed_s t = Unix.gettimeofday () -. t.started
let interrupt t = t.interrupted_flag := true
let interrupted t = !(t.interrupted_flag)
let tripped t = t.tripped

let dispose t = match t.alarm with Some a -> Gc.delete_alarm a | None -> ()

(* The wall clock is a syscall, so it is only consulted every 64 ticks —
   but on tick 1 rather than tick 64, so a zero-second budget trips on
   the first state rather than 63 states in. *)
let tick t =
  match t.tripped with
  | Some _ as r -> r
  | None ->
      t.ticks <- t.ticks + 1;
      let trip r =
        t.tripped <- Some r;
        t.tripped
      in
      if !(t.interrupted_flag) then trip Interrupted
      else if !(t.heap_hit) then trip Heap
      else if
        match t.quota with Some q -> t.ticks > q | None -> false
      then trip Quota
      else if
        t.ticks land 63 = 1
        &&
        match t.wall_seconds with
        | Some budget -> elapsed_s t >= budget
        | None -> false
      then trip Wall_clock
      else None
