(** Structured oracle failures: which property broke, which processors and
    groups are implicated, and a rendered message.  All task checkers
    return [(unit, Task_failure.t) result]; the fuzzing harness and the
    tests consume the structure, the CLI renders {!pp}. *)

type property =
  | Validity
  | Containment
  | Agreement
  | Name_range
  | Name_uniqueness
  | Monotonicity
  | Wait_freedom
  | Mutual_exclusion
  | Deadlock
  | Leader_uniqueness
  | Property of string

type t = {
  property : property;
  processors : int list;  (** implicated processors, 0-based; [] if unknown *)
  groups : int list;  (** implicated group identifiers; [] if unknown *)
  message : string;
}

val property_name : property -> string

val v : ?processors:int list -> ?groups:int list -> property -> string -> t

val failf :
  ?processors:int list ->
  ?groups:int list ->
  property ->
  ('a, Format.formatter, unit, ('b, t) result) format4 ->
  'a
(** [failf prop "..."] builds an [Error] carrying the structured failure. *)

val pp : t Fmt.t
val to_string : t -> string
