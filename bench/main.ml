(* Benchmark harness: one Bechamel test per reproduced artifact of the
   paper (figures 1-5, the model-checking claims, the lower bound) plus the
   ablations called out in DESIGN.md (scheduler sensitivity, the cost of
   the level mechanism vs the unsound double collect, real domains).

   The paper is a brief announcement with no performance evaluation, so
   these benches characterize *our* implementation; EXPERIMENTS.md records
   the shapes (growth with N, scheduler sensitivity, state-space sizes). *)

open Bechamel
open Toolkit

let rng_seed = 20240617

(* --- workloads ------------------------------------------------------------ *)

module Snap_sys = Anonmem.System.Make (Algorithms.Snapshot)
module Dc_sys = Anonmem.System.Make (Algorithms.Double_collect)
module Ren_sys = Anonmem.System.Make (Algorithms.Renaming)
module Cons_sys = Anonmem.System.Make (Algorithms.Consensus)
module Snap_mc = Modelcheck.Explorer.Make (Modelcheck.Codecs.Snapshot)

let snapshot_run ~sched_kind n () =
  let rng = Repro_util.Rng.create ~seed:rng_seed in
  let cfg = Algorithms.Snapshot.standard ~n in
  let wiring = Anonmem.Wiring.random rng ~n ~m:n in
  let inputs = Array.init n (fun i -> i + 1) in
  let state = Snap_sys.init ~cfg ~wiring ~inputs in
  let sched =
    match sched_kind with
    | `Round_robin -> Anonmem.Scheduler.round_robin ()
    | `Random -> Anonmem.Scheduler.random (Repro_util.Rng.split rng)
    | `Solo -> Anonmem.Scheduler.solo 0
  in
  let stop, steps = Snap_sys.run ~max_steps:10_000_000 ~sched state in
  match (sched_kind, stop) with
  | `Solo, Snap_sys.Scheduler_done | _, Snap_sys.All_halted -> steps
  | _ -> failwith "snapshot did not terminate in bench"

(* The same workload as [snapshot_run ~sched_kind:`Random], but with an
   installed-and-empty fault plan: [~faults:[]] forces the interpreting
   path of the fault layer, so the delta against fig3/snapshot_random_sched
   is exactly the overhead a disabled-but-present fault plan costs. *)
let snapshot_run_empty_plan n () =
  let rng = Repro_util.Rng.create ~seed:rng_seed in
  let cfg = Algorithms.Snapshot.standard ~n in
  let wiring = Anonmem.Wiring.random rng ~n ~m:n in
  let inputs = Array.init n (fun i -> i + 1) in
  let state = Snap_sys.init ~cfg ~wiring ~inputs in
  let sched = Anonmem.Scheduler.random (Repro_util.Rng.split rng) in
  let stop, steps = Snap_sys.run ~max_steps:10_000_000 ~faults:[] ~sched state in
  ignore stop;
  steps

let fig1_stabilize n () =
  match
    Analysis.Stable_views.run_random ~n ~m:3
      ~inputs:(Array.init n (fun i -> i + 1))
      ~seed:rng_seed ()
  with
  | Ok r -> r.Analysis.Stable_views.stabilized_at
  | Error e -> failwith e

let fig2_trace actions () = Analysis.Figure2.generate ~actions ()

let fig2_adversary cycles () =
  let cfg = Algorithms.Write_scan.cfg ~n:5 ~m:3 in
  Analysis.Figure2.Write_scan_ext.run ~cfg ~cycles ()

let renaming_run n () =
  let rng = Repro_util.Rng.create ~seed:rng_seed in
  let cfg = Algorithms.Renaming.standard ~n in
  let wiring = Anonmem.Wiring.random rng ~n ~m:n in
  let inputs = Array.init n (fun i -> 1 + (i mod 3)) in
  let state = Ren_sys.init ~cfg ~wiring ~inputs in
  let sched = Anonmem.Scheduler.random (Repro_util.Rng.split rng) in
  match Ren_sys.run ~max_steps:10_000_000 ~sched state with
  | Ren_sys.All_halted, steps -> steps
  | _ -> failwith "renaming did not terminate in bench"

let consensus_solo n () =
  let rng = Repro_util.Rng.create ~seed:rng_seed in
  let cfg = Algorithms.Consensus.standard ~n in
  let wiring = Anonmem.Wiring.random rng ~n ~m:n in
  let inputs = Array.init n (fun i -> 1 + (i mod 2)) in
  let state = Cons_sys.init ~cfg ~wiring ~inputs in
  match Cons_sys.run ~max_steps:10_000_000 ~sched:(Anonmem.Scheduler.solo 0) state with
  | Cons_sys.Scheduler_done, steps -> steps
  | _ -> failwith "solo consensus did not decide in bench"

let consensus_contended n () =
  match
    Core.solve_consensus ~seed:rng_seed ~contention_steps:1_000
      ~inputs:(Array.init n (fun i -> 1 + (i mod 2)))
      ()
  with
  | Ok r -> r.Core.steps
  | Error e -> failwith e

let double_collect_solo n () =
  let cfg = Algorithms.Double_collect.standard ~n in
  let wiring = Anonmem.Wiring.identity ~n ~m:n in
  let inputs = Array.init n (fun i -> i + 1) in
  let state = Dc_sys.init ~cfg ~wiring ~inputs in
  match Dc_sys.run ~max_steps:1_000_000 ~sched:(Anonmem.Scheduler.solo 0) state with
  | Dc_sys.Scheduler_done, steps -> steps
  | _ -> failwith "double collect did not terminate in bench"

let lower_bound n () = Analysis.Lower_bound.run ~n ()

let mc_explore_n2 () =
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  let wiring = Anonmem.Wiring.of_lists [ [ 0; 1 ]; [ 1; 0 ] ] in
  match Snap_mc.explore ~cfg ~wiring ~inputs:[| 1; 2 |] () with
  | Snap_mc.Explored space -> Snap_mc.state_count space
  | _ -> failwith "mc explore failed"

let mc_dfs_n2 () =
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  let wiring = Anonmem.Wiring.of_lists [ [ 0; 1 ]; [ 1; 0 ] ] in
  match Snap_mc.check_exhaustive ~cfg ~wiring ~inputs:[| 1; 2 |] () with
  | Snap_mc.Dfs_ok s -> s.Snap_mc.dfs_states
  | _ -> failwith "mc dfs failed"

let mc_waitfree_n2 () =
  let cfg = Algorithms.Snapshot.standard ~n:2 in
  let wiring = Anonmem.Wiring.of_lists [ [ 0; 1 ]; [ 1; 0 ] ] in
  match Snap_mc.explore ~cfg ~wiring ~inputs:[| 1; 2 |] () with
  | Snap_mc.Explored space -> Snap_mc.is_wait_free space
  | _ -> failwith "mc explore failed"

let witness_random_burst () =
  (* a fixed slice of the randomized non-atomicity search *)
  Core.Snapshot_witness.find_nonatomic ~attempts:20 ~max_steps:4_000
    ~cfg:(Algorithms.Snapshot.standard ~n:3)
    ~inputs:[| 1; 2; 3 |]
    ~memory_set:Core.snapshot_memory_set ~output_set:Fun.id ()

let parallel_snapshot n () =
  match
    Runtime_shm.parallel_snapshot ~seed:rng_seed
      ~inputs:(Array.init n (fun i -> i + 1))
      ()
  with
  | Ok r -> r
  | Error e -> failwith e

(* --- test registry ---------------------------------------------------------- *)

let indexed name args f =
  Test.make_indexed ~name ~args (fun n -> Staged.stage (f n))

let tests =
  Test.make_grouped ~name:"repro"
    [
      indexed "fig1/write_scan_stabilize" [ 3; 5; 7 ] fig1_stabilize;
      indexed "fig2/trace_rows" [ 13; 100 ] fig2_trace;
      indexed "fig2/adversary_cycles" [ 10; 40 ] fig2_adversary;
      indexed "fig3/snapshot_random_sched" [ 2; 4; 6; 8 ]
        (fun n -> snapshot_run ~sched_kind:`Random n);
      indexed "fig3/snapshot_solo" [ 6 ] (fun n -> snapshot_run ~sched_kind:`Solo n);
      indexed "x5/snapshot_empty_fault_plan" [ 2; 4; 6; 8 ] snapshot_run_empty_plan;
      indexed "x1/snapshot_round_robin" [ 6 ]
        (fun n -> snapshot_run ~sched_kind:`Round_robin n);
      indexed "fig4/renaming" [ 4; 8 ] renaming_run;
      indexed "fig5/consensus_solo" [ 4; 8 ] consensus_solo;
      indexed "fig5/consensus_contended" [ 4 ] consensus_contended;
      indexed "x3/double_collect_solo" [ 6 ] double_collect_solo;
      indexed "lb/covering_construction" [ 5 ] lower_bound;
      Test.make ~name:"c1/mc_explore_n2" (Staged.stage mc_explore_n2);
      Test.make ~name:"c1/mc_dfs_n2" (Staged.stage mc_dfs_n2);
      Test.make ~name:"c1/mc_waitfree_n2" (Staged.stage mc_waitfree_n2);
      Test.make ~name:"c2/witness_random_burst" (Staged.stage witness_random_burst);
      indexed "x2/parallel_snapshot_domains" [ 4 ] parallel_snapshot;
    ]

(* --- driver ---------------------------------------------------------------- *)

let () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let time_ns =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, time_ns, r2) :: acc)
      results []
    |> List.sort compare
  in
  let t = Repro_util.Text_table.create ~headers:[ "benchmark"; "time/run"; "r^2" ] in
  let pp_time ns =
    if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, time_ns, r2) ->
      Repro_util.Text_table.add_row t
        [ name; pp_time time_ns; Printf.sprintf "%.4f" r2 ])
    rows;
  print_string (Repro_util.Text_table.render t)
