lib/algorithms/named_snapshot.ml: Anonmem Fmt Iset List Repro_util
