test/test_runtime.ml: Alcotest Algorithms Anonmem Array Iset Option Printf Repro_util Runtime_shm Tasks
