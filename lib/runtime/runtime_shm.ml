(** Real shared-memory runtime: run any fully-anonymous protocol on actual
    OCaml 5 domains.

    The simulator in {!Anonmem.System} interleaves steps under a scheduler;
    this module instead spawns one domain per processor and backs the [M]
    anonymous registers with [Atomic.t] cells holding immutable protocol
    values.  Atomic reads and writes of immutable values give exactly the
    MWMR atomic-register semantics of the model (each access is a single
    linearizable load or store), and the hardware/OS scheduler plays the
    role of the asynchronous adversary.  Each domain is wired through its
    own hidden permutation, as in the model.

    The runtime is supervised: every domain body is caught (no exception
    ever escapes to [Domain.join]), each processor reports a structured
    {!Make.status}, and an {!Anonmem.Fault} plan can be injected — here
    [at] times are the processor's {e own} operation counts, since domains
    share no global clock.  Crash-recovery is realized as bounded respawn
    with the same input and a fresh local state (the restarted processor
    cannot know it is the same one).  A watchdog wall-clock [timeout]
    (monotonic clock, checked every 256 operations) bounds runs whose step
    budget alone is too coarse.

    This is the "production" face of the library: the example
    [examples/multicore_snapshot.ml] and the [X2] experiment run the
    Figure-3 snapshot, renaming and consensus algorithms on real
    parallelism and validate the task properties of the collected
    outputs. *)

open Repro_util

module Journal = Journal
(** Re-export: the append-only checksummed run journal (see
    [journal.mli]), the durable record of long verification sweeps. *)

(** Watchdog budgets used by the supervision tests.

    The tests bound non-terminating protocols (write-scan, the Bomb) with
    step budgets; on a loaded box — e.g. when the model checker's domain
    pool shares the cores — a hard-coded literal is a flake magnet.  Every
    test-side timeout derives from this single wall-clock constant, which
    [ANONSIM_TEST_WATCHDOG] (seconds, a float) overrides without
    recompiling, so a slow CI runner is one environment variable away from
    green. *)
module Watchdog = struct
  let env_var = "ANONSIM_TEST_WATCHDOG"
  let default_seconds = 5.0

  let seconds () =
    match Sys.getenv_opt env_var with
    | Some s -> ( match float_of_string_opt s with Some f when f > 0. -> f | _ -> default_seconds)
    | None -> default_seconds

  (* Conversion used to derive *step* budgets from the wall-clock budget:
     deliberately conservative (atomics sustain millions of ops/s, so this
     budget expires long before the wall clock would). *)
  let steps_per_second = 1_000
  let steps () = max 1 (int_of_float (seconds () *. float_of_int steps_per_second))
end

module Make (P : Anonmem.Protocol.S) = struct
  type status =
    | Done
    | Restarted of int
        (** completed, but only after this many injected crash-recoveries *)
    | Timed_out of { elapsed_s : float; checkpoint : string option }
        (** step budget or watchdog deadline exhausted after [elapsed_s]
            seconds of wall clock; [checkpoint], when present, is where
            the run's progress survives (processors themselves never
            checkpoint — the field is filled in by supervision layers
            that do, e.g. {!Supervisor}) *)
    | Crashed of { injected : bool; reason : string }
        (** [injected = true]: a planned fault; [false]: a real exception
            escaped the protocol code (reported, never re-raised across
            the domain boundary) *)

  type outcome = {
    outputs : P.output option array;
    steps : int array;  (** shared-memory operations issued per processor *)
    statuses : status array;
    wiring : Anonmem.Wiring.t;
  }

  let pp_status ppf = function
    | Done -> Fmt.string ppf "done"
    | Restarted k -> Fmt.pf ppf "done after %d restart%s" k (if k = 1 then "" else "s")
    | Timed_out { elapsed_s; checkpoint } ->
        Fmt.pf ppf "timed out after %.2fs%a" elapsed_s
          Fmt.(option (any "; checkpoint at " ++ string))
          checkpoint
    | Crashed { injected; reason } ->
        Fmt.pf ppf "crashed (%s%s)" (if injected then "injected: " else "") reason

  exception Step_limit of int  (** payload: operations completed *)

  (* Internal control-flow exceptions of the supervisor; never escape. *)
  exception Injected_crash_stop
  exception Injected_crash_recover
  exception Deadline_exceeded

  (* One processor's life: repeatedly execute the pending operation against
     the atomic registers until the protocol halts (or the step budget runs
     out, for non-terminating protocols such as the write-scan loop).
     [steps] is owned by this processor's domain and survives respawns, so
     budgets are cumulative across recoveries and the supervisor always
     knows the real operation count.  Fault arms ([crash_op], [recover_ops],
     [omit_ops], [stale_ops]) fire on own-operation indices. *)
  let processor_loop cfg wiring registers prev stuck ~deadline ~max_steps
      ~crash_op ~recover_ops ~omit_ops ~stale_ops p ~steps local0 =
    let due ops =
      match !ops with
      | k :: rest when !steps >= k ->
          ops := rest;
          true
      | _ -> false
    in
    let rec go local =
      match P.next cfg local with
      | None -> local
      | Some op ->
          if !steps >= max_steps then raise (Step_limit !steps);
          (match crash_op with
          | Some k when !steps >= k -> raise Injected_crash_stop
          | _ -> ());
          if due recover_ops then raise Injected_crash_recover;
          if
            !steps land 255 = 0
            && Int64.compare (Monotonic_clock.now ()) deadline > 0
          then raise Deadline_exceeded;
          incr steps;
          let local =
            match op with
            | Anonmem.Protocol.Read i ->
                let r = Anonmem.Wiring.phys wiring ~p i in
                let v =
                  if due stale_ops then Atomic.get prev.(r)
                  else Atomic.get registers.(r)
                in
                P.apply_read cfg local ~reg:i v
            | Anonmem.Protocol.Write (i, v) ->
                let r = Anonmem.Wiring.phys wiring ~p i in
                let dropped =
                  (match stuck.(r) with
                  | Some (k, attempts) -> Atomic.fetch_and_add attempts 1 >= k
                  | None -> false)
                  || due omit_ops
                in
                if not dropped then (
                  (* [prev] trails the register contents for stale reads;
                     the two stores are not one atomic update, which only
                     blurs *which* stale value a degraded read returns —
                     fine for fault injection. *)
                  Atomic.set prev.(r) (Atomic.get registers.(r));
                  Atomic.set registers.(r) v);
                P.apply_write cfg local
          in
          go local
    in
    go local0

  (** Run [inputs] on one domain per processor.  [max_steps] bounds each
      processor's operation count; by default exceeding it fails the whole
      run, while [~allow_timeout:true] reports the timed-out processors as
      having no output (the right reading for obstruction-free protocols,
      where contention may legitimately starve a processor).  [timeout]
      adds a wall-clock watchdog (seconds, monotonic clock) with the same
      policy.  [faults] injects an {!Anonmem.Fault} plan with [at] read as
      own-operation counts; injected crash-recoveries respawn the
      processor with the same input up to [max_restarts] times.  Injected
      faults degrade the outcome per-processor (see [statuses]) instead of
      failing the run; a {e real} exception escaping protocol code still
      returns [Error], but with the processor and reason attached, after
      every domain has been joined.  The wiring defaults to a random one
      drawn from [seed]. *)
  let run ?(seed = 0) ?wiring ?(max_steps = 10_000_000) ?(allow_timeout = false)
      ?(faults = []) ?timeout ?(max_restarts = 3) ~cfg ~inputs () =
    let n = P.processors cfg and m = P.registers cfg in
    if Array.length inputs <> n then invalid_arg "Runtime_shm.run: bad inputs";
    let rng = Rng.create ~seed in
    let wiring =
      match wiring with Some w -> w | None -> Anonmem.Wiring.random rng ~n ~m
    in
    let registers = Array.init m (fun _ -> Atomic.make (P.register_init cfg)) in
    let prev = Array.init m (fun _ -> Atomic.make (P.register_init cfg)) in
    let crash_ops = Anonmem.Fault.crash_stops ~n faults in
    let recover_arms = Array.make n [] in
    List.iter
      (fun (at, p) ->
        if p >= 0 && p < n then recover_arms.(p) <- recover_arms.(p) @ [ at ])
      (Anonmem.Fault.recoveries faults);
    let omit_arms = Anonmem.Fault.omit_arms ~n faults in
    let stale_arms = Anonmem.Fault.stale_arms ~n faults in
    let stuck =
      Array.map
        (Option.map (fun k -> (k, Atomic.make 0)))
        (Anonmem.Fault.stuck_times ~m faults)
    in
    let deadline =
      match timeout with
      | Some secs ->
          Int64.add (Monotonic_clock.now ()) (Int64.of_float (secs *. 1e9))
      | None -> Int64.max_int
    in
    let started = Monotonic_clock.now () in
    let elapsed_s () =
      Int64.to_float (Int64.sub (Monotonic_clock.now ()) started) /. 1e9
    in
    let run_processor p =
      let steps = ref 0 in
      let recover_ops = ref recover_arms.(p) in
      let omit_ops = ref omit_arms.(p) in
      let stale_ops = ref stale_arms.(p) in
      let rec attempt restarts =
        match
          processor_loop cfg wiring registers prev stuck ~deadline ~max_steps
            ~crash_op:crash_ops.(p) ~recover_ops ~omit_ops ~stale_ops p ~steps
            (P.init cfg inputs.(p))
        with
        | local ->
            let status = if restarts > 0 then Restarted restarts else Done in
            (status, P.output cfg local, !steps)
        | exception Step_limit k ->
            (Timed_out { elapsed_s = elapsed_s (); checkpoint = None }, None, k)
        | exception Deadline_exceeded ->
            ( Timed_out { elapsed_s = elapsed_s (); checkpoint = None },
              None,
              !steps )
        | exception Injected_crash_stop ->
            (Crashed { injected = true; reason = "crash-stop" }, None, !steps)
        | exception Injected_crash_recover ->
            if restarts >= max_restarts then
              ( Crashed
                  {
                    injected = true;
                    reason =
                      Printf.sprintf "crash (respawn budget %d exhausted)"
                        max_restarts;
                  },
                None,
                !steps )
            else attempt (restarts + 1)
        | exception exn ->
            ( Crashed { injected = false; reason = Printexc.to_string exn },
              None,
              !steps )
      in
      attempt 0
    in
    (* Every domain body is total: the matches above catch everything, so
       [Domain.join] never re-raises and all domains are always joined. *)
    let domains = Array.init n (fun p -> Domain.spawn (fun () -> run_processor p)) in
    let results = Array.map Domain.join domains in
    let statuses = Array.map (fun (s, _, _) -> s) results in
    let outputs = Array.map (fun (_, o, _) -> o) results in
    let steps = Array.map (fun (_, _, k) -> k) results in
    let real_crash = ref None in
    Array.iteri
      (fun p -> function
        | Crashed { injected = false; reason } when !real_crash = None ->
            real_crash := Some (p, reason)
        | _ -> ())
      statuses;
    match !real_crash with
    | Some (p, reason) ->
        Error (Fmt.str "processor %d raised: %s" (p + 1) reason)
    | None ->
        if
          (not allow_timeout)
          && Array.exists (function Timed_out _ -> true | _ -> false) statuses
        then Error (Fmt.str "some processor exceeded %d operations" max_steps)
        else Ok { outputs; steps; statuses; wiring }
end

(** Bounded restart-from-checkpoint supervision for long verification
    jobs: run a job closure, and when it dies (any exception — a
    governor-independent crash, an [Out_of_memory], a
    [Checkpoint.Corrupt_checkpoint] from a torn file is {e not} retried
    against the same file because the job itself decides how to read
    it), restart it with exponential backoff, pointing it at the last
    checkpoint that survived.  The job sees [~resume_from:(Some path)]
    exactly when the checkpoint file exists, so a first run and a
    restart-after-crash-before-first-checkpoint both start fresh.

    [sleep] is injectable so the supervision tests exercise the backoff
    schedule without waiting it out. *)
module Supervisor = struct
  type 'a outcome =
    | Completed of { value : 'a; restarts : int }
    | Gave_up of { restarts : int; last_error : string }

  let pp_outcome pp_v ppf = function
    | Completed { value; restarts } ->
        Fmt.pf ppf "completed after %d restart%s: %a" restarts
          (if restarts = 1 then "" else "s")
          pp_v value
    | Gave_up { restarts; last_error } ->
        Fmt.pf ppf "gave up after %d restart%s: %s" restarts
          (if restarts = 1 then "" else "s")
          last_error

  (** [supervise ~checkpoint f] runs [f ~resume_from] up to
      [1 + max_restarts] times; the [k]-th restart sleeps
      [backoff_s * 2^k] seconds first. *)
  let supervise ?(max_restarts = 3) ?(backoff_s = 0.1)
      ?(sleep = Unix.sleepf) ~checkpoint f =
    let resume_from () =
      if Sys.file_exists checkpoint then Some checkpoint else None
    in
    let rec go attempt =
      match f ~resume_from:(resume_from ()) with
      | value -> Completed { value; restarts = attempt }
      | exception exn ->
          if attempt >= max_restarts then
            Gave_up
              { restarts = attempt; last_error = Printexc.to_string exn }
          else (
            sleep (backoff_s *. (2. ** float_of_int attempt));
            go (attempt + 1))
    in
    go 0
end

module Snapshot_run = Make (Algorithms.Snapshot)
module Renaming_run = Make (Algorithms.Renaming)
module Consensus_run = Make (Algorithms.Consensus)

(** Solve the snapshot task on real domains and validate the containment
    property of the collected outputs. *)
let parallel_snapshot ?seed ?max_steps ?faults ~inputs () =
  let n = Array.length inputs in
  let cfg = Algorithms.Snapshot.standard ~n in
  match Snapshot_run.run ?seed ?max_steps ?faults ~cfg ~inputs () with
  | Error e -> Error e
  | Ok r -> (
      let outcome = Tasks.Outcome.make ~inputs ~outputs:r.Snapshot_run.outputs () in
      match
        ( Tasks.Snapshot_task.check_strong outcome,
          Tasks.Snapshot_task.check_group_solution outcome )
      with
      | Ok (), Ok () -> Ok r
      | Error e, _ | _, Error e ->
          Error
            (Fmt.str "parallel snapshot outputs invalid: %a"
               Tasks.Task_failure.pp e))

(** Obstruction-free consensus on real domains can livelock under true
    contention, so processors that fail to decide within the step budget
    are reported as undecided; agreement/validity are checked on the
    processors that did decide.  [Ok (decided, undecided_count)]. *)
let parallel_consensus ?seed ?(max_steps = 10_000_000) ~inputs () =
  let n = Array.length inputs in
  let cfg = Algorithms.Consensus.standard ~n in
  match Consensus_run.run ?seed ~max_steps ~allow_timeout:true ~cfg ~inputs () with
  | Error e -> Error e
  | Ok r -> (
      let outcome = Tasks.Outcome.make ~inputs ~outputs:r.Consensus_run.outputs () in
      match Tasks.Consensus_task.check outcome with
      | Ok () ->
          let undecided =
            Array.fold_left
              (fun acc -> function None -> acc + 1 | Some _ -> acc)
              0 r.Consensus_run.outputs
          in
          Ok (r, undecided)
      | Error e ->
          Error
            (Fmt.str "parallel consensus outputs invalid: %a"
               Tasks.Task_failure.pp e))
