(* A tour of the model checker: the machinery that stands in for the
   paper's TLC runs.

   Shows (1) exhaustive verification of the snapshot algorithm for n=2
   over every wiring; (2) divergence detection on the write-scan loop
   (which never terminates, so it must contain cycles); (3) the bit-packed
   3-processor checker cross-validated against the reference semantics;
   (4) bounded model checking of consensus agreement.

   Run with: dune exec examples/model_checking_tour.exe *)

module Snap_mc = Modelcheck.Explorer.Make (Modelcheck.Codecs.Snapshot)
module Ws_mc = Modelcheck.Explorer.Make (Modelcheck.Codecs.Write_scan)

let () =
  print_endline "1. Exhaustive check of the Figure-3 snapshot, n=2, all wirings";
  (match Core.verify_snapshot_model ~n:2 () with
  | Ok s ->
      Printf.printf
        "   verified: containment safety and wait-freedom over %d wirings\n"
        s.Modelcheck.Explorer.wirings_checked;
      Printf.printf "   %d states, %d transitions, %d terminal states\n\n"
        s.Modelcheck.Explorer.total_states s.Modelcheck.Explorer.total_transitions
        s.Modelcheck.Explorer.terminal_states
  | Error e -> failwith e);

  print_endline "2. Wait-freedom as acyclicity: the write-scan loop diverges";
  let cfg = Algorithms.Write_scan.cfg ~n:2 ~m:2 in
  let wiring = Anonmem.Wiring.identity ~n:2 ~m:2 in
  (match Ws_mc.check_exhaustive ~cfg ~wiring ~inputs:[| 1; 2 |] () with
  | Ws_mc.Dfs_cycle { processors; stats } ->
      Printf.printf
        "   cycle found after %d states: processors %s can run forever\n\n"
        stats.Ws_mc.dfs_states
        (String.concat ", "
           (List.map (fun p -> Printf.sprintf "p%d" (p + 1)) processors))
  | _ -> failwith "expected divergence");

  print_endline "3. The bit-packed 3-processor checker (one 51-bit int per state)";
  let compared = Modelcheck.Snapshot3.selfcheck ~runs:40 () in
  Printf.printf
    "   packed semantics cross-validated against the reference on %d steps\n"
    compared;
  print_endline
    "   (a full wiring is ~10^8 states; see `experiments` for the real runs)\n";

  print_endline "4. Bounded model checking of consensus agreement (n=2, ts<=4)";
  match Core.verify_consensus_bounded ~n:2 ~max_ts:4 () with
  | Ok states ->
      Printf.printf
        "   agreement and validity hold over all wirings and interleavings \
         (%d states)\n"
        states
  | Error e -> failwith ("consensus bounded check: " ^ e)
