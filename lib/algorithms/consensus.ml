(** Figure 5: obstruction-free consensus, by derandomizing Chandra's
    shared-coin algorithm (Chandra 1996) on top of the long-lived snapshot,
    following Guerraoui and Ruppert (2005).

    Each processor maintains a preference (initially its input) and a
    monotonically increasing timestamp (initially 0).  It repeatedly invokes
    the long-lived snapshot with the pair [(preference, timestamp)] as
    input.  Upon obtaining a snapshot it decides a value [v] if [v] appears
    with a timestamp at least 2 greater than the timestamp of any other
    value; otherwise it adopts the value with the highest timestamp and
    re-invokes with that timestamp plus one.

    All communication goes through the long-lived snapshot — the consensus
    layer never touches a register directly — so its steps cannot interfere
    with the snapshot protocol.  A processor running solo first adopts the
    leading value and then raises its timestamp twice, so the algorithm is
    obstruction-free; agreement holds in every execution
    ({!Tasks.Consensus_task} checks it). *)

open Repro_util

(** View elements: [(value, timestamp)] pairs. *)
module Pref = struct
  type t = int * int

  let compare (v1, t1) (v2, t2) =
    match Int.compare v1 v2 with 0 -> Int.compare t1 t2 | c -> c
end

module Pset = Sorted_set.Make (Pref)

module Pref_pp = struct
  let pp_elt ppf ((v, t) : Pref.t) = Fmt.pf ppf "%d@%d" v t
end

module Snap = Long_lived_snapshot.Make (Pset) (Pref_pp)

type cfg = Snap.cfg = { n : int; m : int }

let cfg = Snap.cfg
let standard ~n = Snap.standard ~n

type value = Snap.value
type input = int
type output = int

type local = {
  input : int;
  pref : int;
  ts : int;
  decided : int option;
  rounds : int;  (** completed snapshot invocations, for the benchmarks *)
  snap : Snap.local;
}

let name = "consensus(fig5)"
let processors = Snap.processors
let registers = Snap.registers
let register_init = Snap.register_init

let init c input =
  { input; pref = input; ts = 0; decided = None; rounds = 0; snap = Snap.init c (input, 0) }

let halted c l =
  match l.decided with Some _ -> true | None -> Snap.halted c l.snap

let next c l =
  match l.decided with None -> Snap.next c l.snap | Some _ -> None

let apply_write c l = { l with snap = Snap.apply_write c l.snap }

(** Highest timestamp carried by each value in a snapshot, as an
    association list sorted by value. *)
let leaders view =
  Pset.fold
    (fun (v, t) acc ->
      match List.assoc_opt v acc with
      | Some t' when t' >= t -> acc
      | _ -> (v, t) :: List.remove_assoc v acc)
    view []

(** The decision rule of Figure 5 applied to a completed snapshot: either
    [`Decide v] or [`Adopt (pref, ts)] for the next invocation.

    A value absent from the snapshot counts as having timestamp 0 — in
    Chandra's racing formulation both counters exist from the start at 0,
    and a decision requires being two {e ahead}, not merely unopposed.
    This reading is load-bearing: treating absent rivals as [-oo] (decide
    the moment your snapshot contains no other value) is falsified by our
    bounded model checker with a 60-step two-processor disagreement — a
    covering pattern keeps one processor's snapshot at its own singleton
    while the other pumps its timestamp in a parallel universe; see
    test_consensus.ml and EXPERIMENTS.md.  Requiring a lead of 2 over the
    implicit 0 forces a solo decider to raise its timestamp to 2 first,
    and the containment of snapshot outputs then prevents the split. *)
let resolve view =
  let l = leaders view in
  let v1, t1 =
    List.fold_left
      (fun (bv, bt) (v, t) ->
        if t > bt || (t = bt && v < bv) then (v, t) else (bv, bt))
      (max_int, min_int) l
  in
  let rival_ts =
    List.fold_left (fun acc (v, t) -> if v = v1 then acc else max acc t) 0 l
  in
  if t1 >= rival_ts + 2 then `Decide v1 else `Adopt (v1, t1 + 1)

let apply_read c l ~reg v =
  let snap = Snap.apply_read c l.snap ~reg v in
  if not (Snap.ready c snap) then { l with snap }
  else
    (* The invocation just completed: consume the snapshot and either
       decide or immediately re-invoke, all within this atomic step (local
       computation folds into the adjacent read, as in PlusCal). *)
    let l = { l with rounds = l.rounds + 1 } in
    match resolve (Snap.output_view snap) with
    | `Decide value -> { l with decided = Some value; snap }
    | `Adopt (pref, ts) ->
        { l with pref; ts; snap = Snap.invoke c snap (pref, ts) }

let output _ l = l.decided

(* Flat twin.  A [(value, timestamp)] pair packs into one word,
   [(v lsl 31) lor t], which preserves {!Pref.compare}'s lexicographic
   order for pairs in [0, 2^31); a view is then a sorted row of packed
   words in a capacity-bounded register file, so scans compare and merge
   rows without allocating.  Capacity is the largest initial view plus
   slack; a merge or adoption that would overflow it — or mint a
   timestamp past the packing window — raises
   {!Anonmem.Protocol.Fallback} before mutating anything and the boxed
   path takes over, so the machine is {e not} total.  Merged rows are
   staged in a scratch row and committed only after the overflow check.
   The embedded long-lived snapshot's scan bookkeeping ([all_own],
   [min_level], position-encoded phase) mirrors {!Snapshot.flat}; on a
   completed invocation the Figure-5 decision rule runs directly over
   the sorted row — a leader's run of packed pairs is contiguous and its
   last element carries the maximal timestamp. *)
let flat (c : cfg) ~(phys : int array) ~(inputs : int array)
    ~(registers : value array) ~(locals : local array) :
    value Anonmem.Protocol.flat option =
  let n = c.n and m = c.m in
  let module Bits = Repro_util.Bits in
  let vbits = 31 in
  let wmax = 1 lsl vbits in
  let in_window x = 0 <= x && x < wmax in
  let pair_ok (v, t) = in_window v && in_window t in
  let view_ok vs = Pset.for_all pair_ok vs in
  let local_ok l =
    in_window l.pref && in_window l.ts
    && (match l.decided with None -> true | Some d -> d >= 0)
    && view_ok l.snap.Snap.Core.view
  in
  if n > Bits.max_width || m > Bits.max_width
     || not (Array.for_all in_window inputs)
     || not
          (Array.for_all (fun (v : value) -> view_ok v.Snap.Core.view) registers)
     || not (Array.for_all local_ok locals)
  then None
  else begin
    let pack (v, t) = (v lsl vbits) lor t in
    let unpack w = (w lsr vbits, w land (wmax - 1)) in
    let cap =
      let mx = ref 1 in
      Array.iter
        (fun (v : value) -> mx := max !mx (Pset.cardinal v.Snap.Core.view))
        registers;
      Array.iter
        (fun l -> mx := max !mx (Pset.cardinal l.snap.Snap.Core.view))
        locals;
      !mx + 128
    in
    (* Encode a view into row [base] (returning its length); decode back. *)
    let enc_view vs arr base =
      let i = ref 0 in
      Pset.iter
        (fun pr ->
          arr.(base + !i) <- pack pr;
          incr i)
        vs;
      !i
    in
    let dec_view arr base len =
      Pset.of_list (List.init len (fun i -> unpack arr.(base + i)))
    in
    let rv_len = Array.make m 0 in
    let rv = Array.make (m * cap) 0 in
    let rlevel = Array.make m 0 in
    Array.iteri
      (fun r (v : value) ->
        rv_len.(r) <- enc_view v.Snap.Core.view rv (r * cap);
        rlevel.(r) <- v.Snap.Core.level)
      registers;
    let pv_len = Array.copy rv_len in
    let pv = Array.copy rv in
    let plevel = Array.copy rlevel in
    let dirty = ref 0 in
    let linput = Array.map (fun l -> l.input) locals in
    let lpref = Array.map (fun l -> l.pref) locals in
    let lts = Array.map (fun l -> l.ts) locals in
    let ldec =
      Array.map
        (fun l -> match l.decided with None -> -1 | Some d -> d)
        locals
    in
    let lrounds = Array.map (fun l -> l.rounds) locals in
    let lv_len = Array.make n 0 in
    let lv = Array.make (n * cap) 0 in
    let llevel = Array.map (fun l -> l.snap.Snap.Core.level) locals in
    let lnext = Array.map (fun l -> l.snap.Snap.Core.next_write) locals in
    let lpos = Array.make n (-1) in
    let lall = Array.make n 0 in
    let lmin = Array.make n 0 in
    Array.iteri
      (fun p l ->
        lv_len.(p) <- enc_view l.snap.Snap.Core.view lv (p * cap);
        match l.snap.Snap.Core.phase with
        | Snap.Core.Writing -> lpos.(p) <- -1
        | Snap.Core.Scanning { pos; all_own; min_level } ->
            lpos.(p) <- pos;
            lall.(p) <- (if all_own then 1 else 0);
            lmin.(p) <- min_level)
      locals;
    let scratch = Array.make (2 * cap) 0 in
    let snap_halted p = lpos.(p) < 0 && llevel.(p) >= n in
    let halted p = ldec.(p) >= 0 || snap_halted p in
    let peek p =
      if halted p then -1
      else if lpos.(p) < 0 then (phys.((p * m) + lnext.(p)) lsl 1) lor 1
      else phys.((p * m) + lpos.(p)) lsl 1
    in
    (* The leader of the sorted row at [lbase]: maximal timestamp, ties
       to the smaller value.  Each value's packed run is contiguous and
       ends at its maximal timestamp. *)
    let leader lbase len =
      let v1 = ref max_int and t1 = ref min_int in
      let i = ref 0 in
      while !i < len do
        let v = lv.(lbase + !i) lsr vbits in
        let j = ref !i in
        while !j + 1 < len && lv.(lbase + !j + 1) lsr vbits = v do
          incr j
        done;
        let t = lv.(lbase + !j) land (wmax - 1) in
        if t > !t1 || (t = !t1 && v < !v1) then begin
          v1 := v;
          t1 := t
        end;
        i := !j + 1
      done;
      (!v1, !t1)
    in
    let rival_ts lbase len ~not_v =
      let best = ref 0 in
      let i = ref 0 in
      while !i < len do
        let v = lv.(lbase + !i) lsr vbits in
        let j = ref !i in
        while !j + 1 < len && lv.(lbase + !j + 1) lsr vbits = v do
          incr j
        done;
        let t = lv.(lbase + !j) land (wmax - 1) in
        if v <> not_v && t > !best then best := t;
        i := !j + 1
      done;
      !best
    in
    (* A scan read of register [r] out of the given (current or stale)
       register file view; every Fallback fires before any mutation. *)
    let do_read p vlen varr vlevel r =
      let pos = lpos.(p) in
      let lbase = p * cap and rbase = r * cap in
      let len = lv_len.(p) in
      let equal =
        vlen = len
        &&
        let rec eq i =
          i >= len || (varr.(rbase + i) = lv.(lbase + i) && eq (i + 1))
        in
        eq 0
      in
      let all = lall.(p) = 1 && equal in
      let mlen =
        if all then len
        else begin
          let i = ref 0 and j = ref 0 and k = ref 0 in
          while !i < len && !j < vlen do
            let a = lv.(lbase + !i) and b = varr.(rbase + !j) in
            if a < b then begin
              scratch.(!k) <- a;
              incr i
            end
            else if a > b then begin
              scratch.(!k) <- b;
              incr j
            end
            else begin
              scratch.(!k) <- a;
              incr i;
              incr j
            end;
            incr k
          done;
          while !i < len do
            scratch.(!k) <- lv.(lbase + !i);
            incr i;
            incr k
          done;
          while !j < vlen do
            scratch.(!k) <- varr.(rbase + !j);
            incr j;
            incr k
          done;
          !k
        end
      in
      if mlen > cap then raise Anonmem.Protocol.Fallback;
      if pos + 1 < m then begin
        if all then lmin.(p) <- min lmin.(p) vlevel
        else begin
          Array.blit scratch 0 lv lbase mlen;
          lv_len.(p) <- mlen;
          lall.(p) <- 0;
          lmin.(p) <- 0
        end;
        lpos.(p) <- pos + 1
      end
      else begin
        let minl = if all then min lmin.(p) vlevel else 0 in
        let level = if all then min (minl + 1) n else 0 in
        if level >= n then begin
          (* The invocation just completed; [all] held throughout, so the
             view is unchanged — resolve directly over the current row. *)
          if len = 0 then raise Anonmem.Protocol.Fallback;
          let v1, t1 = leader lbase len in
          let rival = rival_ts lbase len ~not_v:v1 in
          if t1 >= rival + 2 then begin
            lrounds.(p) <- lrounds.(p) + 1;
            ldec.(p) <- v1;
            llevel.(p) <- level;
            lpos.(p) <- -1
          end
          else begin
            let ts' = t1 + 1 in
            if ts' >= wmax then raise Anonmem.Protocol.Fallback;
            let w = (v1 lsl vbits) lor ts' in
            let lo = ref 0 and hi = ref len in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if lv.(lbase + mid) < w then lo := mid + 1 else hi := mid
            done;
            let present = !lo < len && lv.(lbase + !lo) = w in
            if (not present) && len = cap then
              raise Anonmem.Protocol.Fallback;
            lrounds.(p) <- lrounds.(p) + 1;
            lpref.(p) <- v1;
            lts.(p) <- ts';
            if not present then begin
              Array.blit lv (lbase + !lo) lv (lbase + !lo + 1) (len - !lo);
              lv.(lbase + !lo) <- w;
              lv_len.(p) <- len + 1
            end;
            llevel.(p) <- 0;
            lpos.(p) <- -1
          end
        end
        else begin
          if not all then begin
            Array.blit scratch 0 lv lbase mlen;
            lv_len.(p) <- mlen
          end;
          llevel.(p) <- level;
          lpos.(p) <- -1
        end
      end
    in
    let advance_write p =
      lnext.(p) <- (lnext.(p) + 1) mod m;
      lpos.(p) <- 0;
      lall.(p) <- 1;
      lmin.(p) <- n
    in
    let step p =
      if lpos.(p) < 0 then begin
        let r = phys.((p * m) + lnext.(p)) in
        let rbase = r * cap in
        pv_len.(r) <- rv_len.(r);
        Array.blit rv rbase pv rbase rv_len.(r);
        plevel.(r) <- rlevel.(r);
        let len = lv_len.(p) in
        Array.blit lv (p * cap) rv rbase len;
        rv_len.(r) <- len;
        rlevel.(r) <- llevel.(p);
        dirty := !dirty lor (1 lsl r);
        advance_write p
      end
      else begin
        let r = phys.((p * m) + lpos.(p)) in
        do_read p rv_len.(r) rv rlevel.(r) r
      end
    in
    let step_stale p =
      let r = phys.((p * m) + lpos.(p)) in
      do_read p pv_len.(r) pv plevel.(r) r
    in
    let reset p =
      linput.(p) <- inputs.(p);
      lpref.(p) <- inputs.(p);
      lts.(p) <- 0;
      ldec.(p) <- -1;
      lrounds.(p) <- 0;
      lv.(p * cap) <- pack (inputs.(p), 0);
      lv_len.(p) <- 1;
      llevel.(p) <- 0;
      lnext.(p) <- 0;
      lpos.(p) <- -1
    in
    let dec_value r =
      { Snap.Core.view = dec_view rv (r * cap) rv_len.(r); level = rlevel.(r) }
    in
    let value r =
      if !dirty land (1 lsl r) <> 0 then dec_value r else registers.(r)
    in
    let sync () =
      List.iter (fun r -> registers.(r) <- dec_value r) (Bits.to_list !dirty);
      for p = 0 to n - 1 do
        let phase =
          if lpos.(p) < 0 then Snap.Core.Writing
          else
            Snap.Core.Scanning
              { pos = lpos.(p); all_own = lall.(p) = 1; min_level = lmin.(p) }
        in
        let snap =
          {
            Snap.Core.view = dec_view lv (p * cap) lv_len.(p);
            level = llevel.(p);
            next_write = lnext.(p);
            phase;
          }
        in
        locals.(p) <-
          {
            input = linput.(p);
            pref = lpref.(p);
            ts = lts.(p);
            decided = (if ldec.(p) < 0 then None else Some ldec.(p));
            rounds = lrounds.(p);
            snap;
          }
      done
    in
    Some
      {
        Anonmem.Protocol.total = false;
        peek;
        step;
        step_omit = advance_write;
        step_stale;
        reset;
        halted;
        value;
        sync;
      }
  end
let rounds_of_local l = l.rounds
let preference_of_local l = (l.pref, l.ts)
let pp_value = Snap.pp_value

let pp_local c ppf l =
  Fmt.pf ppf "{pref=%d ts=%d %a snap=%a}" l.pref l.ts
    (Fmt.option ~none:(Fmt.any "undecided") (fun ppf d ->
         Fmt.pf ppf "decided=%d" d))
    l.decided (Snap.pp_local c) l.snap

let pp_output _ = Fmt.int
