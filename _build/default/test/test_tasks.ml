(* Tests of the task layer: outcomes, output-sample enumeration, and the
   group-solvability checkers for snapshot, consensus and renaming —
   including the paper's worked 4-processor example of Section 3.2. *)

open Repro_util

let s = Iset.of_list

let outcome inputs outputs =
  Tasks.Outcome.make ~inputs:(Array.of_list inputs)
    ~outputs:(Array.of_list outputs) ()

let ok = Alcotest.(check bool) "valid" true
let bad = Alcotest.(check bool) "invalid" false
let is_ok = function Ok () -> true | Error _ -> false

(* --- Outcome ------------------------------------------------------------- *)

let test_participating_groups () =
  let t =
    Tasks.Outcome.make ~inputs:[| 1; 2; 2; 5 |]
      ~participated:[| true; false; true; true |]
      ~outputs:[| None; None; None; None |] ()
  in
  Alcotest.(check (list int)) "groups of participants" [ 1; 2; 5 ]
    (Iset.elements (Tasks.Outcome.participating_groups t))

let test_output_implies_participation () =
  let t =
    Tasks.Outcome.make ~inputs:[| 1; 2 |]
      ~participated:[| false; false |]
      ~outputs:[| Some (s [ 1 ]); None |]
      ()
  in
  Alcotest.(check (list int)) "p0 forced participating" [ 1 ]
    (Iset.elements (Tasks.Outcome.participating_groups t))

let test_sample_count () =
  (* groups: 1 -> outputs {a,b}, 2 -> outputs {c}; 2*1 = 2 samples *)
  let t = outcome [ 1; 1; 2 ] [ Some "a"; Some "b"; Some "c" ] in
  Alcotest.(check int) "2 samples" 2 (Tasks.Outcome.sample_count t);
  Alcotest.(check int) "sequence length" 2
    (List.length (List.of_seq (Tasks.Outcome.samples t)))

let test_samples_cover_choices () =
  let t = outcome [ 1; 1; 2 ] [ Some "a"; Some "b"; Some "c" ] in
  let samples = List.of_seq (Tasks.Outcome.samples t) in
  Alcotest.(check bool) "contains (1,a)(2,c)" true
    (List.exists (fun smp -> List.assoc 1 smp = "a" && List.assoc 2 smp = "c") samples);
  Alcotest.(check bool) "contains (1,b)(2,c)" true
    (List.exists (fun smp -> List.assoc 1 smp = "b" && List.assoc 2 smp = "c") samples)

let test_group_without_output_excluded () =
  let t = outcome [ 1; 2 ] [ Some "a"; None ] in
  let samples = List.of_seq (Tasks.Outcome.samples t) in
  Alcotest.(check int) "one sample" 1 (List.length samples);
  Alcotest.(check (list (pair int string))) "only group 1" [ (1, "a") ]
    (List.hd samples)

(* --- Snapshot task ------------------------------------------------------- *)

(* The paper's Section-3.2 example: processors 1,2,3,4 in groups A={1},
   B={2,3}, C={4}; outputs {A,B,C}, {A,B}, {B,C}, {A,B,C}.  This is a legal
   group solution even though the two members of B return incomparable
   sets. *)
let paper_example =
  outcome [ 1; 2; 2; 3 ]
    [
      Some (s [ 1; 2; 3 ]);
      Some (s [ 1; 2 ]);
      Some (s [ 2; 3 ]);
      Some (s [ 1; 2; 3 ]);
    ]

let test_paper_example_group_valid () =
  ok (is_ok (Tasks.Snapshot_task.check_group_solution paper_example))

let test_paper_example_not_strong () =
  bad (is_ok (Tasks.Snapshot_task.check_strong paper_example))

let test_snapshot_missing_own_group () =
  let t = outcome [ 1; 2 ] [ Some (s [ 2 ]); Some (s [ 2 ]) ] in
  bad (is_ok (Tasks.Snapshot_task.check_group_solution t))

let test_snapshot_nonparticipant_in_output () =
  let t = outcome [ 1; 2 ] [ Some (s [ 1; 9 ]); Some (s [ 2 ]) ] in
  bad (is_ok (Tasks.Snapshot_task.check_group_solution t))

let test_snapshot_incomparable_across_groups () =
  let t = outcome [ 1; 2; 3 ] [ Some (s [ 1; 2 ]); Some (s [ 2; 3 ]); Some (s [ 1; 2; 3 ]) ] in
  bad (is_ok (Tasks.Snapshot_task.check_group_solution t))

let test_snapshot_chain_valid () =
  let t =
    outcome [ 1; 2; 3 ]
      [ Some (s [ 1 ]); Some (s [ 1; 2 ]); Some (s [ 1; 2; 3 ]) ]
  in
  ok (is_ok (Tasks.Snapshot_task.check_group_solution t));
  ok (is_ok (Tasks.Snapshot_task.check_strong t))

let test_snapshot_nonterminated_ignored () =
  let t = outcome [ 1; 2 ] [ Some (s [ 1 ]); None ] in
  ok (is_ok (Tasks.Snapshot_task.check_group_solution t))

(* --- Consensus task ------------------------------------------------------ *)

let test_consensus_agreement_ok () =
  let t = outcome [ 1; 2; 3 ] [ Some 2; Some 2; Some 2 ] in
  ok (is_ok (Tasks.Consensus_task.check t))

let test_consensus_disagreement () =
  let t = outcome [ 1; 2 ] [ Some 1; Some 2 ] in
  bad (is_ok (Tasks.Consensus_task.check_agreement t));
  bad (is_ok (Tasks.Consensus_task.check_group_solution t))

let test_consensus_invalid_value () =
  let t = outcome [ 1; 2 ] [ Some 7; Some 7 ] in
  bad (is_ok (Tasks.Consensus_task.check t))

let test_consensus_same_group_disagreement_is_group_legal () =
  (* Both processors in group 1: every sample picks one of them, so
     Definition 3.4 is satisfied even though they disagree.  The stronger
     all-agree check fails. *)
  let t = outcome [ 1; 1 ] [ Some 1; Some 1 ] in
  ok (is_ok (Tasks.Consensus_task.check_group_solution t));
  let t' =
    Tasks.Outcome.make ~inputs:[| 1; 1 |] ~outputs:[| Some 1; Some 1 |] ()
  in
  ok (is_ok (Tasks.Consensus_task.check_agreement t'))

let test_consensus_cross_group_disagreement_rejected () =
  let t = outcome [ 1; 1; 2 ] [ Some 1; Some 2; Some 2 ] in
  (* sample picking p0 for group 1 and p2 for group 2 disagrees (1 vs 2) *)
  bad (is_ok (Tasks.Consensus_task.check_group_solution t))

(* --- Renaming task -------------------------------------------------------- *)

let test_renaming_valid () =
  let t = outcome [ 1; 2; 3 ] [ Some 1; Some 3; Some 4 ] in
  ok (is_ok (Tasks.Renaming_task.check t))

let test_renaming_out_of_range () =
  let t = outcome [ 1; 2 ] [ Some 1; Some 4 ] in
  (* 2 groups -> names must fit 1..3 *)
  bad (is_ok (Tasks.Renaming_task.check t))

let test_renaming_cross_group_collision () =
  let t = outcome [ 1; 2 ] [ Some 2; Some 2 ] in
  bad (is_ok (Tasks.Renaming_task.check t))

let test_renaming_same_group_share_ok () =
  let t = outcome [ 1; 1; 2 ] [ Some 1; Some 1; Some 2 ] in
  ok (is_ok (Tasks.Renaming_task.check t))

let test_renaming_adaptive_range_counts_participants_only () =
  (* 3 processors but only 2 participating groups -> bound 3 *)
  let t = outcome [ 5; 5; 9 ] [ Some 3; Some 2; Some 1 ] in
  ok (is_ok (Tasks.Renaming_task.check_range t));
  let t' = outcome [ 5; 5; 9 ] [ Some 6; Some 2; Some 1 ] in
  bad (is_ok (Tasks.Renaming_task.check_range t'))

(* property: sample enumeration size always equals the product of group
   multiplicities *)
let prop_sample_count =
  QCheck.Test.make ~name:"sample_count = product of multiplicities" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 6) (int_range 1 3))
    (fun groups ->
      let inputs = Array.of_list groups in
      let outputs = Array.map (fun g -> Some g) inputs in
      let t = Tasks.Outcome.make ~inputs ~outputs () in
      Tasks.Outcome.sample_count t
      = List.length (List.of_seq (Tasks.Outcome.samples t)))

let () =
  Alcotest.run "tasks"
    [
      ( "outcome",
        [
          Alcotest.test_case "participating groups" `Quick test_participating_groups;
          Alcotest.test_case "output implies participation" `Quick
            test_output_implies_participation;
          Alcotest.test_case "sample count" `Quick test_sample_count;
          Alcotest.test_case "samples cover choices" `Quick test_samples_cover_choices;
          Alcotest.test_case "group without output excluded" `Quick
            test_group_without_output_excluded;
        ] );
      ( "snapshot-task",
        [
          Alcotest.test_case "paper example group-valid" `Quick
            test_paper_example_group_valid;
          Alcotest.test_case "paper example not strongly valid" `Quick
            test_paper_example_not_strong;
          Alcotest.test_case "missing own group" `Quick test_snapshot_missing_own_group;
          Alcotest.test_case "non-participant in output" `Quick
            test_snapshot_nonparticipant_in_output;
          Alcotest.test_case "incomparable across groups" `Quick
            test_snapshot_incomparable_across_groups;
          Alcotest.test_case "containment chain" `Quick test_snapshot_chain_valid;
          Alcotest.test_case "non-terminated ignored" `Quick
            test_snapshot_nonterminated_ignored;
        ] );
      ( "consensus-task",
        [
          Alcotest.test_case "agreement ok" `Quick test_consensus_agreement_ok;
          Alcotest.test_case "disagreement rejected" `Quick test_consensus_disagreement;
          Alcotest.test_case "invalid value rejected" `Quick test_consensus_invalid_value;
          Alcotest.test_case "same-group sampling semantics" `Quick
            test_consensus_same_group_disagreement_is_group_legal;
          Alcotest.test_case "cross-group disagreement rejected" `Quick
            test_consensus_cross_group_disagreement_rejected;
        ] );
      ( "renaming-task",
        [
          Alcotest.test_case "valid" `Quick test_renaming_valid;
          Alcotest.test_case "out of adaptive range" `Quick test_renaming_out_of_range;
          Alcotest.test_case "cross-group collision" `Quick
            test_renaming_cross_group_collision;
          Alcotest.test_case "same-group sharing legal" `Quick
            test_renaming_same_group_share_ok;
          Alcotest.test_case "adaptive range counts participants" `Quick
            test_renaming_adaptive_range_counts_participants_only;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_sample_count ]);
    ]
