(** Permutations of [0..n-1], used as the per-processor register wirings of
    the fully-anonymous model (the [σ_p] of Section 2 of the paper).

    A permutation is an [int array] [a] with [a.(i)] the image of [i]; the
    representation is validated on construction. *)

type t = private int array

val identity : int -> t
val of_array : int array -> t
(** Raises [Invalid_argument] if the array is not a permutation of
    [0..n-1]. *)

val of_list : int list -> t
val size : t -> int
val apply : t -> int -> int
val inverse : t -> t
val compose : t -> t -> t
(** [compose f g] maps [i] to [f (g i)]. *)

val equal : t -> t -> bool
val random : Rng.t -> int -> t

val enumerate : int -> t list
(** All [n!] permutations of [0..n-1], in lexicographic order of their array
    representation.  Intended for the model checker's wiring enumeration
    ([n <= 5] keeps this small). *)

val to_list : t -> int list
val pp : t Fmt.t
(** Prints in one-line image notation, 1-based to match the paper, e.g.
    [(2 3 1)] for the permutation sending register 1 to 2, 2 to 3, 3 to 1. *)
