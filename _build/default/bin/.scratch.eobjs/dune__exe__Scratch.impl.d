bin/scratch.ml: Anonmem Array Fmt List Modelcheck Printf String Unix
