(** {!Explorer.CHECKABLE} instances: fixed-width byte codecs for the
    finite-state protocols of the library.

    The codecs pack views as bitmasks, so they support input values in
    [0..7] — ample for exhaustive exploration, which is only feasible for a
    handful of processors anyway.  All fields of the protocols' local
    states are small non-negative integers; each occupies one byte. *)

open Repro_util

let put b off x =
  if x < 0 || x > 255 then invalid_arg "Codecs: field out of byte range";
  Bytes.set b off (Char.chr x)

let get b off = Char.code (Bytes.get b off)

(** The Figure-3 snapshot algorithm. *)
module Snapshot = struct
  include Algorithms.Snapshot
  module C = Algorithms.Snapshot.Core

  let value_width _ = 2

  let encode_value _ (v : value) b off =
    put b off (Iset.to_bits v.view);
    put b (off + 1) v.level

  let decode_value _ b off : value =
    { view = Iset.of_bits (get b off); level = get b (off + 1) }

  let local_width _ = 5

  let encode_local _ (l : local) b off =
    put b off (Iset.to_bits l.C.view);
    put b (off + 1) l.C.level;
    put b (off + 2) l.C.next_write;
    match l.C.phase with
    | C.Writing ->
        put b (off + 3) 0;
        put b (off + 4) 0
    | C.Scanning s ->
        put b (off + 3) (1 + (s.C.pos * 2) + (if s.C.all_own then 1 else 0));
        put b (off + 4) s.C.min_level

  let decode_local _ b off : local =
    let phase =
      match get b (off + 3) with
      | 0 -> C.Writing
      | k ->
          C.Scanning
            {
              C.pos = (k - 1) / 2;
              all_own = (k - 1) land 1 = 1;
              min_level = get b (off + 4);
            }
    in
    {
      C.view = Iset.of_bits (get b off);
      level = get b (off + 1);
      next_write = get b (off + 2);
      phase;
    }
end

(** The Figure-1 write–scan loop (no outputs; explored for its cycle
    structure). *)
module Write_scan = struct
  include Algorithms.Write_scan
  module W = Algorithms.Write_scan

  let value_width _ = 1
  let encode_value _ v b off = put b off (Iset.to_bits v)
  let decode_value _ b off = Iset.of_bits (get b off)
  let local_width _ = 3

  let encode_local _ (l : local) b off =
    put b off (Iset.to_bits l.W.view);
    put b (off + 1) l.W.next_write;
    match l.W.phase with
    | W.Writing -> put b (off + 2) 0
    | W.Scanning s -> put b (off + 2) (1 + s.W.pos)

  let decode_local _ b off : local =
    let phase =
      match get b (off + 2) with
      | 0 -> W.Writing
      | k -> W.Scanning { W.pos = k - 1 }
    in
    {
      W.view = Iset.of_bits (get b off);
      next_write = get b (off + 1);
      phase;
    }
end

(** The broken double-collect baseline, explored to hunt for task
    violations mechanically. *)
module Double_collect = struct
  include Algorithms.Double_collect
  module D = Algorithms.Double_collect

  let value_width _ = 1
  let encode_value _ v b off = put b off (Iset.to_bits v)
  let decode_value _ b off = Iset.of_bits (get b off)
  let local_width _ = 4

  let encode_local _ (l : local) b off =
    put b off (Iset.to_bits l.D.view);
    put b (off + 1) l.D.next_write;
    put b (off + 2) l.D.streak;
    match l.D.phase with
    | D.Writing -> put b (off + 3) 0
    | D.Scanning s ->
        put b (off + 3) (1 + (s.D.pos * 2) + (if s.D.all_own then 1 else 0))

  let decode_local _ b off : local =
    let phase =
      match get b (off + 3) with
      | 0 -> D.Writing
      | k ->
          D.Scanning { D.pos = (k - 1) / 2; all_own = (k - 1) land 1 = 1 }
    in
    {
      D.view = Iset.of_bits (get b off);
      next_write = get b (off + 1);
      streak = get b (off + 2);
      phase;
    }
end

(** The Figure-5 consensus algorithm, for {e bounded} exploration: the
    state space is infinite (timestamps grow without bound), so exploration
    must be cut off with [stop_expansion] once a timestamp exceeds a bound;
    the codec supports values in [1..max_value] and timestamps in
    [0..max_ts] with [max_value * (max_ts + 1) <= 24].

    The [rounds] diagnostic counter is deliberately {e not} encoded (it
    never influences behaviour); decoding yields [rounds = 0], which
    quotients the state space by a ghost variable. *)
module Consensus = struct
  include Algorithms.Consensus
  module C = Algorithms.Consensus
  module SC = Algorithms.Consensus.Snap.Core

  let max_value = 3
  let max_ts = 7

  let pair_index (v, t) =
    if v < 1 || v > max_value || t < 0 || t > max_ts then
      invalid_arg "Codecs.Consensus: (value, timestamp) out of bounds";
    ((v - 1) * (max_ts + 1)) + t

  let pair_of_index i = ((i / (max_ts + 1)) + 1, i mod (max_ts + 1))

  let pset_bits s =
    C.Pset.fold (fun p acc -> acc lor (1 lsl pair_index p)) s 0

  let pset_of_bits bits =
    let rec go i acc =
      if i >= max_value * (max_ts + 1) then acc
      else
        go (i + 1)
          (if bits land (1 lsl i) <> 0 then C.Pset.add (pair_of_index i) acc
           else acc)
    in
    go 0 C.Pset.empty

  let put3 b off x =
    put b off (x land 0xff);
    put b (off + 1) ((x lsr 8) land 0xff);
    put b (off + 2) ((x lsr 16) land 0xff)

  let get3 b off = get b off lor (get b (off + 1) lsl 8) lor (get b (off + 2) lsl 16)

  let value_width _ = 4

  let encode_value _ (v : value) b off =
    put3 b off (pset_bits v.SC.view);
    put b (off + 3) v.SC.level

  let decode_value _ b off : value =
    { SC.view = pset_of_bits (get3 b off); level = get b (off + 3) }

  (* pref, ts, decided(+1, 0 = none), snap: view(3) level nw phase min *)
  let local_width _ = 10

  let encode_local _ (l : local) b off =
    put b off l.C.pref;
    put b (off + 1) l.C.ts;
    put b (off + 2) (match l.C.decided with None -> 0 | Some v -> v + 1);
    let s = l.C.snap in
    put3 b (off + 3) (pset_bits s.SC.view);
    put b (off + 6) s.SC.level;
    put b (off + 7) s.SC.next_write;
    (match s.SC.phase with
    | SC.Writing ->
        put b (off + 8) 0;
        put b (off + 9) 0
    | SC.Scanning sc ->
        put b (off + 8) (1 + (sc.SC.pos * 2) + (if sc.SC.all_own then 1 else 0));
        put b (off + 9) sc.SC.min_level)

  let decode_local _ b off : local =
    let phase =
      match get b (off + 8) with
      | 0 -> SC.Writing
      | k ->
          SC.Scanning
            {
              SC.pos = (k - 1) / 2;
              all_own = (k - 1) land 1 = 1;
              min_level = get b (off + 9);
            }
    in
    {
      C.input = get b off;
      (* the original input is immaterial after initialization; decode it
         as the current preference, which keeps the codec total *)
      pref = get b off;
      ts = get b (off + 1);
      decided = (match get b (off + 2) with 0 -> None | v -> Some (v - 1));
      rounds = 0;
      snap =
        {
          SC.view = pset_of_bits (get3 b (off + 3));
          level = get b (off + 6);
          next_write = get b (off + 7);
          phase;
        };
    }
end

(** The Figure-4 renaming algorithm: the snapshot core plus the immutable
    group identifier. *)
module Renaming = struct
  include Algorithms.Renaming
  module R = Algorithms.Renaming

  let value_width = Snapshot.value_width
  let encode_value = Snapshot.encode_value
  let decode_value = Snapshot.decode_value
  let local_width cfg = 1 + Snapshot.local_width cfg

  let encode_local cfg (l : local) b off =
    put b off l.R.group;
    Snapshot.encode_local cfg l.R.core b (off + 1)

  let decode_local cfg b off : local =
    { R.group = get b off; core = Snapshot.decode_local cfg b (off + 1) }
end

(** The Raynal–Taubenfeld-style mutex: claim values are identities, local
    views are positional buffers of one byte per register.  Supports
    m <= 8 registers (release sets pack into one byte) — ample for the
    feasibility grid. *)
module Rt_mutex = struct
  include Algorithms.Rt_mutex
  module M = Algorithms.Rt_mutex

  let check_m cfg =
    if M.registers cfg > 8 then
      invalid_arg "Codecs.Rt_mutex: at most 8 registers"

  let value_width _ = 1

  (* 0 = free; odd = claim, even > 0 = seal, identity in the upper bits *)
  let value_byte : value -> int = function
    | M.Free -> 0
    | M.Claim id -> (id * 2) + 1
    | M.Seal id -> (id * 2) + 2

  let byte_value k : value =
    if k = 0 then M.Free
    else if k land 1 = 1 then M.Claim ((k - 1) / 2)
    else M.Seal ((k - 2) / 2)

  let encode_value _ (v : value) b off = put b off (value_byte v)
  let decode_value _ b off : value = byte_value (get b off)

  (* id, phase tag, aux, collect summary: mine mask, first_free + 1,
     then (id + 1, count) pairs for the rival counts (ascending ids, the
     canonical order the protocol maintains, zero-terminated) *)
  let local_width cfg =
    check_m cfg;
    5 + (2 * M.registers cfg)

  let mask_of_list l = List.fold_left (fun m i -> m lor (1 lsl i)) 0 l

  let list_of_mask m =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (if m land (1 lsl i) <> 0 then i :: acc else acc)
    in
    go 7 []

  let encode_others others b off =
    List.iteri
      (fun i (id, k) ->
        put b (off + (2 * i)) (id + 1);
        put b (off + (2 * i) + 1) k)
      others

  let decode_others ~m b off =
    let rec go i =
      if i >= m then []
      else
        match get b (off + (2 * i)) with
        | 0 -> []
        | id -> (id - 1, get b (off + (2 * i) + 1)) :: go (i + 1)
    in
    go 0

  let encode_local cfg (l : local) b off =
    check_m cfg;
    let m = M.registers cfg in
    put b off l.M.id;
    for i = 3 to 4 + (2 * m) do
      put b (off + i) 0
    done;
    match l.M.phase with
    | M.Collecting { pos; mine; others; first_free } ->
        put b (off + 1) 0;
        put b (off + 2) pos;
        put b (off + 3) mine;
        put b (off + 4) (first_free + 1);
        encode_others others b (off + 5)
    | M.Claiming { target } ->
        put b (off + 1) 1;
        put b (off + 2) target
    | M.Releasing { mine } ->
        put b (off + 1) 2;
        put b (off + 2) (mask_of_list mine)
    | M.Sealing { pos } ->
        put b (off + 1) 3;
        put b (off + 2) pos
    | M.Auditing { pos; dirty } ->
        put b (off + 1) 4;
        put b (off + 2) ((pos * 2) + if dirty then 1 else 0)
    | M.Unlocking { pos; dirty } ->
        put b (off + 1) 5;
        put b (off + 2) ((pos * 2) + if dirty then 1 else 0)
    | M.Done o ->
        put b (off + 1) 6;
        put b (off + 2) (match o with M.Cs_clean -> 0 | M.Cs_intruded -> 1)

  let decode_local cfg b off : local =
    let id = get b off in
    let aux = get b (off + 2) in
    let phase =
      match get b (off + 1) with
      | 0 ->
          M.Collecting
            {
              pos = aux;
              mine = get b (off + 3);
              first_free = get b (off + 4) - 1;
              others = decode_others ~m:(M.registers cfg) b (off + 5);
            }
      | 1 -> M.Claiming { target = aux }
      | 2 -> M.Releasing { mine = list_of_mask aux }
      | 3 -> M.Sealing { pos = aux }
      | 4 -> M.Auditing { pos = aux / 2; dirty = aux land 1 = 1 }
      | 5 -> M.Unlocking { pos = aux / 2; dirty = aux land 1 = 1 }
      | _ -> M.Done (if aux = 0 then M.Cs_clean else M.Cs_intruded)
    in
    { M.id; phase }
end

(** The wait-free weak leader election. *)
module Weak_leader = struct
  include Algorithms.Weak_leader
  module W = Algorithms.Weak_leader

  let value_width _ = 1

  let encode_value _ (v : value) b off =
    put b off (match v with None -> 0 | Some id -> id + 1)

  let decode_value _ b off : value =
    match get b off with 0 -> None | k -> Some (k - 1)

  let local_width cfg = 3 + W.registers cfg

  let encode_local cfg (l : local) b off =
    let m = W.registers cfg in
    put b off l.W.id;
    for i = 0 to m - 1 do
      put b (off + 3 + i) 0
    done;
    match l.W.phase with
    | W.Collecting { pos; acc } ->
        put b (off + 1) 0;
        put b (off + 2) pos;
        List.iteri
          (fun i v ->
            put b
              (off + 3 + (pos - 1 - i))
              (match v with None -> 0 | Some id -> id + 1))
          acc
    | W.Claiming { target } ->
        put b (off + 1) 1;
        put b (off + 2) target
    | W.Done o ->
        put b (off + 1) 2;
        put b (off + 2) (match o with W.Follower -> 0 | W.Leader -> 1)

  let decode_local _ b off : local =
    let id = get b off in
    let aux = get b (off + 2) in
    let phase =
      match get b (off + 1) with
      | 0 ->
          let pos = aux in
          let acc = ref [] in
          for i = 0 to pos - 1 do
            acc :=
              (match get b (off + 3 + i) with 0 -> None | k -> Some (k - 1))
              :: !acc
          done;
          W.Collecting { pos; acc = !acc }
      | 1 -> W.Claiming { target = aux }
      | _ -> W.Done (if aux = 0 then W.Follower else W.Leader)
    in
    { W.id; phase }
end

(** Mutex-based desanonymization: register values carry a claim owner and
    a {!Algorithms.Named_memory} ledger (one byte per name slot; names
    stay in [1..n] in the crash-stop and fault-free executions the
    checkers explore). *)
module Naming = struct
  include Algorithms.Naming
  module N = Algorithms.Naming
  module L = Algorithms.Named_memory

  let check_m cfg =
    if N.registers cfg > 8 then invalid_arg "Codecs.Naming: at most 8 registers"

  let encode_ledger cfg (ledger : L.t) b off =
    let n = N.processors cfg in
    for k = 0 to n - 1 do
      put b (off + k) 0
    done;
    List.iter
      (fun (c : L.cell) ->
        if c.L.name < 1 || c.L.name > n then
          invalid_arg "Codecs.Naming: name out of range";
        put b (off + c.L.name - 1) (c.L.owner + 1))
      ledger

  let decode_ledger cfg b off : L.t =
    let n = N.processors cfg in
    let rec go k acc =
      if k < 1 then acc
      else
        go (k - 1)
          (match get b (off + k - 1) with
          | 0 -> acc
          | o -> { L.name = k; owner = o - 1 } :: acc)
    in
    go n []

  let value_width cfg = 1 + N.processors cfg

  let encode_value cfg (v : value) b off =
    put b off (match v.N.owner with None -> 0 | Some id -> id + 1);
    encode_ledger cfg v.N.ledger b (off + 1)

  let decode_value cfg b off : value =
    {
      N.owner = (match get b off with 0 -> None | k -> Some (k - 1));
      ledger = decode_ledger cfg b (off + 1);
    }

  (* id, know ledger, phase tag, aux, collect summary (mine mask,
     first_free + 1, rival-count pairs) — same layout as Rt_mutex *)
  let local_width cfg =
    check_m cfg;
    5 + N.processors cfg + (2 * N.registers cfg)

  let encode_local cfg (l : local) b off =
    check_m cfg;
    let n = N.processors cfg and m = N.registers cfg in
    put b off l.N.id;
    encode_ledger cfg l.N.know b (off + 1);
    let toff = off + 1 + n in
    for i = 2 to 3 + (2 * m) do
      put b (toff + i) 0
    done;
    match l.N.phase with
    | N.Collecting { pos; mine; others; first_free } ->
        put b toff 0;
        put b (toff + 1) pos;
        put b (toff + 2) mine;
        put b (toff + 3) (first_free + 1);
        Rt_mutex.encode_others others b (toff + 4)
    | N.Claiming { target } ->
        put b toff 1;
        put b (toff + 1) target
    | N.Releasing { mine } ->
        put b toff 2;
        put b (toff + 1) (Rt_mutex.mask_of_list mine)
    | N.Flooding { pos; name } ->
        put b toff 3;
        put b (toff + 1) ((pos * 16) + name)
    | N.Done name ->
        put b toff 4;
        put b (toff + 1) name

  let decode_local cfg b off : local =
    let n = N.processors cfg in
    let id = get b off in
    let know = decode_ledger cfg b (off + 1) in
    let toff = off + 1 + n in
    let aux = get b (toff + 1) in
    let phase =
      match get b toff with
      | 0 ->
          N.Collecting
            {
              pos = aux;
              mine = get b (toff + 2);
              first_free = get b (toff + 3) - 1;
              others = Rt_mutex.decode_others ~m:(N.registers cfg) b (toff + 4);
            }
      | 1 -> N.Claiming { target = aux }
      | 2 -> N.Releasing { mine = Rt_mutex.list_of_mask aux }
      | 3 -> N.Flooding { pos = aux / 16; name = aux mod 16 }
      | _ -> N.Done aux
    in
    { N.id; know; phase }
end
