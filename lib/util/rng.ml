(* Splitmix-style generator on the native word.  The original
   implementation was textbook splitmix64 over boxed [Int64]; every draw
   allocated a handful of boxes, which made the scheduler the largest
   allocator in the fuzzing harness's per-step profile.  This version runs
   the same mix structure on OCaml's untagged 63-bit [int] (multiplication
   wraps modulo 2^63, identically on every 64-bit platform), so drawing is
   allocation-free.  The stream differs from the Int64 version's; nothing
   in the library pins specific stream values, only reproducibility from a
   seed. *)

type t = { mutable state : int }

(* The splitmix64 constants truncated to fit a 63-bit literal; still odd,
   still avalanche well at this width. *)
let golden_gamma = 0x1E3779B97F4A7C15

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let create ~seed = { state = mix seed }
let copy t = { state = t.state }

let next t =
  t.state <- t.state + golden_gamma;
  mix t.state

let split t = { state = mix (next t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Masking keeps the draw non-negative; modulo bias is negligible for
     the small bounds used here. *)
  next t land max_int mod bound

let bool t = next t land 1 = 1
let bits64 t = Int64.of_int (next t)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n Fun.id in
  shuffle_in_place t a;
  a
