examples/model_checking_tour.mli:
